package recovery

// Group-level mitigation: the system-level counterpart of Guarded. Where
// Guarded pairs the single-accelerator detection bounds with two-iteration
// re-execution, GroupGuard pairs the collective layer's failure reports and
// the cross-replica consistency check with a pluggable recovery Strategy:
//
//   - StrategyReexec (the paper's pipeline, the default): a device that
//     exhausts the collective timeout+retry budget (crash, hopeless
//     straggler) is excluded by the engine mid-iteration; its contribution
//     never entered the reduction, so no rollback is needed — the group
//     continues degraded with rescaled averaging. A device whose
//     contribution fails the cross-replica check (stuck-at datapath, link
//     SDC) is quarantined AND the corrupted update is undone with the
//     paper's two-iteration re-execution. After RejoinAfter clean
//     iterations, a quarantined device hot-rejoins by replicating weights
//     and normalization statistics from the healthy root peer
//     (train.Engine.Rejoin); MaxRejoins bounds the cycle.
//   - StrategyJIT: no re-execution ring at all (zero steady-state snapshot
//     cost). On quarantine the guard clones the healthy root peer's replica
//     state synchronously — data-parallel ranks hold identical weights, so
//     the donor's state IS the lost rank's checkpoint, taken just-in-time
//     after the failure — and restores it into the lost rank on a
//     background goroutine while training continues. When the device's
//     fault repairs, the restored rank is topped up with the current root
//     weights and re-admitted.
//   - StrategyElastic: no re-execution ring either. The engine re-partitions
//     the global batch across the survivors every degraded iteration
//     (train.Engine.SetElastic), so no example is dropped and gradient
//     averaging stays exact over the new partition; repaired devices are
//     re-admitted with a re-partition back to full strength.
//   - StrategyDegraded: quarantine-only — RejoinAfter is forced to 0 by the
//     campaign layer, the group stays shrunken for the rest of the run.
//     (The re-execution ring is retained for corrupt quarantines.)
//
// JIT and elastic trade the re-executor's rollback away: a corrupt
// contribution detected by the cross-replica check still quarantines the
// outlier, but the poisoned averaged update is not undone (fail-stop
// semantics). Crash and straggler faults — the populations these
// strategies exist for — never corrupt a contribution, so they lose
// nothing.

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/train"
)

// GroupEvent records one quarantine or recovery episode.
type GroupEvent struct {
	// Iteration is when the event happened.
	Iteration int
	// Device is the affected replica.
	Device int
	// Kind is "quarantine-timeout" (crash/straggler exclusion),
	// "quarantine-corrupt" (cross-replica alarm), "rejoin" (hot-rejoin from
	// the root peer), "rejoin-failed" (a hot-rejoin attempt that errored),
	// "jit-snapshot" (a donor replica cloned as a just-in-time checkpoint),
	// "jit-restore" (a rank re-admitted from a JIT checkpoint), "resize"
	// (the elastic partition shrank), or "readmit" (the elastic partition
	// grew back).
	Kind string
	// ResumedFrom is the re-execution resume iteration for rolled-back
	// quarantine-corrupt events, the donor device for jit-snapshot and
	// jit-restore events, and -1 otherwise.
	ResumedFrom int
}

// pendingJIT tracks one in-flight just-in-time restore: the cloned donor
// state, the donor device, and the channel the background copy closes when
// the quarantined replica has been imaged.
type pendingJIT struct {
	state *train.ReplicaState
	donor int
	done  chan struct{}
}

// GroupGuard couples an engine with the group-level mitigation pipeline.
// NewGroupGuard arms the engine's collective for it (exclusion policy +
// contribution signatures).
type GroupGuard struct {
	E *train.Engine
	R *ReExecutor
	// Check is the cross-replica consistency check run after every
	// iteration's collective.
	Check *detect.GroupCheck
	// Strategy selects the recovery pipeline (StrategyReexec by default).
	Strategy Strategy
	// RejoinAfter is how many iterations after its quarantine a device is
	// given a hot-rejoin attempt under StrategyReexec; 0 keeps the group
	// degraded for the rest of the run. (JIT and elastic re-admit on fault
	// repair instead of on a timer.)
	RejoinAfter int
	// MaxRejoins bounds rejoin/re-admission attempts per device, so a
	// permanently faulty device cannot oscillate in and out of the group
	// forever. Failed attempts charge against it too (a wedged device
	// cannot retry unboundedly).
	MaxRejoins int

	// Events lists every quarantine/recovery episode in order.
	Events []GroupEvent
	// Quarantines, Rejoins, Rollbacks and DegradedIters count mitigation
	// activity: devices removed, devices returned (by any strategy),
	// two-iteration re-executions, and iterations run with a partial group.
	Quarantines, Rejoins, Rollbacks, DegradedIters int
	// RejoinFailures counts hot-rejoin attempts that errored.
	RejoinFailures int
	// JITSnapshots counts donor replicas cloned as just-in-time
	// checkpoints; Resizes counts elastic re-partitions (shrink or grow);
	// Readmits counts devices returned by the JIT and elastic strategies.
	JITSnapshots, Resizes, Readmits int
	// CommRetries totals the collective retry attempts across the run.
	CommRetries int
	// CorruptElems totals the gradient elements corrupted by the armed
	// device fault across the run (the system-level injection footprint).
	CorruptElems int

	quarantinedAt map[int]int // device -> iteration of latest quarantine
	rejoins       map[int]int // device -> rejoin attempts used

	pending map[int]*pendingJIT // device -> in-flight JIT restore

	firstQuarantine int // iteration of the first quarantine, -1 before
	recoveredAt     int // first completed full-strength iteration after it, -1

	// onRestore, when non-nil, observes every completed JIT restore before
	// the weight top-up: the re-imaged device and the checkpoint it was
	// restored from. Test seam for the bitwise donor-equality proof.
	onRestore func(device int, s *train.ReplicaState)
}

// NewGroupGuard builds the group-mitigated trainer and switches the
// engine's collective to the mitigation policy: timed-out devices are
// excluded (not group-hung) and contribution signatures are collected for
// the cross-replica check.
func NewGroupGuard(e *train.Engine) *GroupGuard {
	p := e.Group().Policy()
	p.Exclude = true
	e.Group().SetPolicy(p)
	e.Group().SetCollectSigs(true)
	return &GroupGuard{
		E: e, R: NewReExecutor(e), Check: detect.NewGroupCheck(),
		Strategy:    StrategyReexec,
		RejoinAfter: 8, MaxRejoins: 2,
		quarantinedAt: map[int]int{}, rejoins: map[int]int{},
		pending:         map[int]*pendingJIT{},
		firstQuarantine: -1, recoveredAt: -1,
	}
}

// usesReexec reports whether the strategy runs the two-iteration
// re-execution ring (snapshot every iteration, rollback on corruption).
func (g *GroupGuard) usesReexec() bool {
	return g.Strategy == StrategyReexec || g.Strategy == StrategyDegraded || g.Strategy == StrategyNone
}

// TimeToRecover returns the number of iterations between the first
// quarantine and the first completed iteration with the group back at full
// strength, or -1 if nothing was quarantined or the group never returned
// to full strength (permanent faults, StrategyDegraded).
func (g *GroupGuard) TimeToRecover() int {
	if g.firstQuarantine < 0 || g.recoveredAt < 0 {
		return -1
	}
	return g.recoveredAt - g.firstQuarantine
}

// noteQuarantine latches the first quarantine iteration for TimeToRecover.
func (g *GroupGuard) noteQuarantine(iter int) {
	if g.firstQuarantine < 0 {
		g.firstQuarantine = iter
	}
}

// Run executes iterations [start, end) with group-level mitigation,
// recording metrics into trace. It returns an error only if the whole
// group fails (nothing left to reduce over).
func (g *GroupGuard) Run(start, end int, trace *train.Trace) error {
	g.E.SetElastic(g.Strategy == StrategyElastic)
	// A pooled engine is reused by the next experiment the moment Run
	// returns — never leave a background restore writing into a replica.
	defer g.drainRestores()
	iter := start
	for iter < end {
		// Return due devices to the group before stepping, ascending
		// device order.
		switch g.Strategy {
		case StrategyJIT:
			g.admitJITRestored(iter)
		case StrategyElastic:
			g.readmitElastic(iter)
		default:
			g.rejoinDue(iter)
		}

		if g.usesReexec() {
			g.R.BeforeIteration(iter)
		}
		st := g.E.RunIteration(iter)
		g.CommRetries += st.CommRetries
		g.CorruptElems += st.DeviceFaultElems
		if st.GroupHang {
			return fmt.Errorf("recovery: collective hang at iteration %d with exclusion policy (no healthy devices left)", iter)
		}
		trace.TrainLoss = append(trace.TrainLoss, st.Loss)
		trace.TrainAcc = append(trace.TrainAcc, st.TrainAcc)
		trace.Completed++
		if st.Degraded {
			g.DegradedIters++
		}

		// Timed-out devices were excluded before their contribution
		// entered the reduction and already quarantined by the engine —
		// record the episode, no rollback needed.
		for _, d := range st.DevicesFailed {
			g.quarantinedAt[d] = iter
			g.Quarantines++
			g.noteQuarantine(iter)
			g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "quarantine-timeout", ResumedFrom: -1})
			g.afterQuarantine(iter, d)
		}

		// Cross-replica consistency: a corrupt contribution was consumed
		// by this iteration's reduction, so quarantine the outlier — and,
		// under the re-executing strategies, undo the poisoned update with
		// two-iteration re-execution. JIT and elastic keep no ring: the
		// quarantine is fail-stop and the update stands.
		if a := g.Check.Check(g.E.LastReduce()); a != nil {
			g.E.Quarantine(a.Device)
			g.quarantinedAt[a.Device] = iter
			g.Quarantines++
			g.noteQuarantine(iter)
			if g.usesReexec() {
				resume := g.R.Rollback()
				g.Rollbacks++
				rolledBack := iter - resume + 1
				trace.TrainLoss = trace.TrainLoss[:len(trace.TrainLoss)-rolledBack]
				trace.TrainAcc = trace.TrainAcc[:len(trace.TrainAcc)-rolledBack]
				trace.Completed -= rolledBack
				g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: a.Device, Kind: "quarantine-corrupt", ResumedFrom: resume})
				iter = resume
				continue
			}
			g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: a.Device, Kind: "quarantine-corrupt", ResumedFrom: -1})
			g.afterQuarantine(iter, a.Device)
		}

		// Recovery latch: the first completed iteration with the group back
		// at full strength. (A rejoined-but-still-faulty device never gets
		// here at full strength — the collective re-fails it mid-iteration.)
		if g.recoveredAt < 0 && g.firstQuarantine >= 0 &&
			g.E.Group().HealthyCount() == g.E.Config().Devices {
			g.recoveredAt = iter
		}

		// An INF/NaN that survives the cross-replica check (corruption too
		// small to flag, grown over iterations) is the framework's error
		// message: it terminates the run, exactly as in the FI campaigns.
		if st.NonFinite && trace.NonFiniteIter == -1 {
			trace.NonFiniteIter = iter
			trace.NonFiniteAt = st.NonFiniteAt
			return nil
		}

		if te := g.E.Config().TestEvery; te > 0 && (iter+1)%te == 0 {
			tl, ta := g.E.Evaluate(g.E.RootDevice())
			trace.TestIters = append(trace.TestIters, iter)
			trace.TestLoss = append(trace.TestLoss, tl)
			trace.TestAcc = append(trace.TestAcc, ta)
		}
		iter++
	}
	return nil
}

// afterQuarantine runs the strategy-specific reaction to a fresh
// quarantine: JIT clones a checkpoint from the healthy root donor, elastic
// records the shrink re-partition the engine will apply next iteration.
func (g *GroupGuard) afterQuarantine(iter, d int) {
	switch g.Strategy {
	case StrategyJIT:
		g.jitCapture(iter, d)
	case StrategyElastic:
		g.Resizes++
		g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "resize", ResumedFrom: -1})
	}
}

// jitCapture takes the just-in-time checkpoint for quarantined device d:
// clone the healthy root donor's replica state now (the only moment the
// donor is guaranteed to be at the same iteration boundary), then image it
// into d on a background goroutine. The copy races nothing: training never
// touches quarantined replicas, and re-admission joins the channel first.
func (g *GroupGuard) jitCapture(iter, d int) {
	if g.E.Group().HealthyCount() == 0 {
		return
	}
	donor := g.E.RootDevice()
	state := g.E.SnapshotReplica(donor)
	g.JITSnapshots++
	g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "jit-snapshot", ResumedFrom: donor})
	p := &pendingJIT{state: state, donor: donor, done: make(chan struct{})}
	g.pending[d] = p
	go func() {
		g.E.RestoreReplica(d, state)
		close(p.done)
	}()
}

// admitJITRestored re-admits quarantined devices whose fault has repaired
// and whose background restore finished: join the restore, top the rank up
// with the current root weights (its BatchNorm statistics stay from the
// JIT checkpoint), and return it to the collective.
func (g *GroupGuard) admitJITRestored(iter int) {
	for d := 0; d < g.E.Config().Devices; d++ {
		p, ok := g.pending[d]
		if !ok || g.rejoins[d] >= g.MaxRejoins {
			continue
		}
		if f := g.E.Group().FaultFor(d); f.ActiveAt(iter) {
			continue
		}
		<-p.done
		delete(g.pending, d)
		if g.onRestore != nil {
			g.onRestore(d, p.state)
		}
		if err := g.E.SyncWeights(d); err != nil {
			g.rejoins[d]++
			g.RejoinFailures++
			g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "rejoin-failed", ResumedFrom: -1})
			continue
		}
		g.E.Group().Rejoin(d)
		delete(g.quarantinedAt, d)
		g.rejoins[d]++
		g.Rejoins++
		g.Readmits++
		g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "jit-restore", ResumedFrom: p.donor})
	}
}

// readmitElastic returns quarantined devices whose fault has repaired to
// the elastic group: a full hot-rejoin from the root peer, after which the
// engine re-partitions the global batch back to full strength.
func (g *GroupGuard) readmitElastic(iter int) {
	for d := 0; d < g.E.Config().Devices; d++ {
		_, q := g.quarantinedAt[d]
		if !q || g.rejoins[d] >= g.MaxRejoins {
			continue
		}
		if f := g.E.Group().FaultFor(d); f.ActiveAt(iter) {
			continue
		}
		if err := g.E.Rejoin(d); err != nil {
			g.rejoins[d]++
			g.RejoinFailures++
			g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "rejoin-failed", ResumedFrom: -1})
			continue
		}
		delete(g.quarantinedAt, d)
		g.rejoins[d]++
		g.Rejoins++
		g.Readmits++
		g.Resizes++
		g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "readmit", ResumedFrom: -1})
	}
}

// rejoinDue runs StrategyReexec's timer-based hot-rejoin: RejoinAfter
// iterations after its quarantine a device gets a rejoin attempt. Failed
// attempts are counted, surfaced as rejoin-failed events, and charged
// against MaxRejoins so a wedged device cannot retry forever.
func (g *GroupGuard) rejoinDue(iter int) {
	if g.RejoinAfter <= 0 {
		return
	}
	for d := 0; d < g.E.Config().Devices; d++ {
		at, q := g.quarantinedAt[d]
		if !q || iter < at+g.RejoinAfter || g.rejoins[d] >= g.MaxRejoins {
			continue
		}
		if err := g.E.Rejoin(d); err != nil {
			g.rejoins[d]++
			g.RejoinFailures++
			g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "rejoin-failed", ResumedFrom: -1})
			continue
		}
		delete(g.quarantinedAt, d)
		g.rejoins[d]++
		g.Rejoins++
		g.Events = append(g.Events, GroupEvent{Iteration: iter, Device: d, Kind: "rejoin", ResumedFrom: -1})
	}
}

// drainRestores joins every in-flight background restore. Run defers it so
// a pooled engine is never handed to the next experiment with a goroutine
// still writing into a replica.
func (g *GroupGuard) drainRestores() {
	for d, p := range g.pending {
		<-p.done
		delete(g.pending, d)
	}
}

// FirstQuarantineIter returns the iteration of the first quarantine event,
// or -1.
func (g *GroupGuard) FirstQuarantineIter() int {
	for _, ev := range g.Events {
		if ev.Kind == "quarantine-timeout" || ev.Kind == "quarantine-corrupt" {
			return ev.Iteration
		}
	}
	return -1
}

// FirstDetectIter returns the iteration of the first cross-replica
// detection (quarantine-corrupt) event, or -1.
func (g *GroupGuard) FirstDetectIter() int {
	for _, ev := range g.Events {
		if ev.Kind == "quarantine-corrupt" {
			return ev.Iteration
		}
	}
	return -1
}
