package recovery

import "fmt"

// Strategy selects the recovery pipeline a GroupGuard runs when a device
// fault is detected. The four mitigated strategies reproduce the
// system-level recovery axis the paper's fleet data motivates (Sec 5.2)
// plus the two post-failure techniques that dominate real fleets:
//
//   - StrategyReexec: the paper's baseline — quarantine the faulty device,
//     roll back two iterations via the ReExecutor ring on corruption, and
//     hot-rejoin repaired devices from a root peer. Periodic snapshot cost
//     every iteration, two-iteration rollback on detection.
//   - StrategyJIT: just-in-time checkpointing (open-jitc): no periodic
//     snapshot at all. On quarantine, clone a healthy peer's full replica
//     state (weights + BN statistics) asynchronously — data-parallel ranks
//     hold identical weights, so the donor's state IS the lost rank's
//     checkpoint — and restart the lost rank from it when its fault
//     repairs. Zero steady-state cost, zero rollback.
//   - StrategyElastic: elastic group resize (Oobleck/ReCycle): on
//     quarantine, re-partition the global batch across the surviving
//     devices (per-device batch grows; gradient averaging stays exact over
//     the new partition via shard-weighted AllReduce) and re-admit repaired
//     devices with a re-partition back to full strength.
//   - StrategyDegraded: quarantine-only — keep training on the shrunken
//     group at reduced effective batch, never re-admit. (Corrupt-quarantine
//     rollback is retained; crash quarantines need none.)
//
// StrategyNone is the zero value and means "unmitigated": the caller runs
// the engine directly without a GroupGuard, so a crash hangs the
// collective — the paper's do-nothing baseline.
type Strategy int

const (
	StrategyNone Strategy = iota
	StrategyReexec
	StrategyJIT
	StrategyElastic
	StrategyDegraded
)

// strategyNames maps each Strategy to its flag/journal spelling.
var strategyNames = map[Strategy]string{
	StrategyNone:     "none",
	StrategyReexec:   "reexec",
	StrategyJIT:      "jit",
	StrategyElastic:  "elastic",
	StrategyDegraded: "degraded",
}

// Strategies lists the mitigated strategies in head-to-head display order.
var Strategies = []Strategy{StrategyReexec, StrategyJIT, StrategyElastic, StrategyDegraded}

// String returns the flag/journal spelling of s.
func (s Strategy) String() string {
	if name, ok := strategyNames[s]; ok {
		return name
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// StrategyByName parses a flag/journal spelling back into a Strategy.
func StrategyByName(name string) (Strategy, bool) {
	for s, n := range strategyNames {
		if n == name {
			return s, true
		}
	}
	return StrategyNone, false
}
