package recovery

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/train"
)

// TestStrategyNames: every published strategy round-trips through its
// serialized name, and unknown names are rejected.
func TestStrategyNames(t *testing.T) {
	for _, s := range append([]Strategy{StrategyNone}, Strategies...) {
		got, ok := StrategyByName(s.String())
		if !ok || got != s {
			t.Fatalf("strategy %d does not round-trip: name %q -> (%v, %v)", s, s.String(), got, ok)
		}
	}
	if _, ok := StrategyByName("checkpointless"); ok {
		t.Fatal("unknown strategy name resolved")
	}
}

// TestGroupGuardJITCrashRecovery is the just-in-time checkpoint proof: a
// crashed device is quarantined, a checkpoint is cloned from the healthy
// root donor at that moment, the rank is re-imaged in the background, and
// on fault repair it is re-admitted. The restored replica must be bitwise
// equal to the donor checkpoint — data-parallel ranks hold identical
// weights, so the donor state IS the lost rank's checkpoint — and the
// time-to-recover must equal the fault's outage window exactly.
func TestGroupGuardJITCrashRecovery(t *testing.T) {
	const iters = 30
	const onset, repair = 5, 10

	e := resnetEngine()
	e.Group().Arm(fault.DeviceFault{
		Kind: fault.DeviceCrash, Device: 2, Iteration: onset, RepairIter: repair,
	})
	g := NewGroupGuard(e)
	g.Strategy = StrategyJIT

	restored := 0
	g.onRestore = func(d int, s *train.ReplicaState) {
		restored++
		if d != 2 {
			t.Errorf("restore imaged device %d, want 2", d)
		}
		params := e.Replica(d).Params()
		if len(params) != len(s.Params) {
			t.Fatalf("restored rank has %d params, checkpoint has %d", len(params), len(s.Params))
		}
		for i, p := range params {
			for j := range p.Value.Data {
				if math.Float32bits(p.Value.Data[j]) != math.Float32bits(s.Params[i].Data[j]) {
					t.Fatalf("param %d elem %d: restored rank diverges bitwise from the donor checkpoint", i, j)
				}
			}
		}
	}

	trace := train.NewTrace("resnet")
	if err := g.Run(0, iters, trace); err != nil {
		t.Fatalf("GroupGuard.Run: %v", err)
	}
	if restored != 1 {
		t.Fatalf("onRestore observed %d restores, want 1", restored)
	}
	if g.JITSnapshots != 1 || g.Readmits != 1 || g.Rejoins != 1 {
		t.Fatalf("jitSnapshots=%d readmits=%d rejoins=%d, want 1/1/1",
			g.JITSnapshots, g.Readmits, g.Rejoins)
	}
	if g.Rollbacks != 0 {
		t.Fatalf("JIT strategy ran %d rollbacks, want 0 (no re-execution ring)", g.Rollbacks)
	}
	if ttr := g.TimeToRecover(); ttr != repair-onset {
		t.Fatalf("TimeToRecover = %d, want the outage window %d", ttr, repair-onset)
	}
	if e.Group().HealthyCount() != e.Config().Devices {
		t.Fatalf("group not back to full strength: %d/%d healthy",
			e.Group().HealthyCount(), e.Config().Devices)
	}
	if trace.Completed != iters || trace.NonFiniteIter != -1 {
		t.Fatalf("completed=%d nonfinite@%d", trace.Completed, trace.NonFiniteIter)
	}
	var kinds []string
	for _, ev := range g.Events {
		kinds = append(kinds, ev.Kind)
	}
	want := []string{"quarantine-timeout", "jit-snapshot", "jit-restore"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for _, ev := range g.Events {
		if (ev.Kind == "jit-snapshot" || ev.Kind == "jit-restore") && ev.ResumedFrom != e.RootDevice() {
			t.Fatalf("%s event names donor %d, want root %d", ev.Kind, ev.ResumedFrom, e.RootDevice())
		}
	}
}

// TestGroupGuardElasticCrashRecovery: under the elastic strategy a crashed
// device shrinks the global-batch partition over the survivors (no example
// dropped), a repaired device grows it back, and the whole schedule is
// deterministic — two independent runs of the same failure schedule produce
// bitwise-identical traces.
func TestGroupGuardElasticCrashRecovery(t *testing.T) {
	const iters = 30
	const onset, repair = 6, 12

	run := func() (*GroupGuard, *train.Trace) {
		e := resnetEngine()
		e.Group().Arm(fault.DeviceFault{
			Kind: fault.DeviceCrash, Device: 3, Iteration: onset, RepairIter: repair,
		})
		g := NewGroupGuard(e)
		g.Strategy = StrategyElastic
		trace := train.NewTrace("resnet")
		if err := g.Run(0, iters, trace); err != nil {
			t.Fatalf("GroupGuard.Run: %v", err)
		}
		if e.Group().HealthyCount() != e.Config().Devices {
			t.Fatalf("group not back to full strength: %d/%d healthy",
				e.Group().HealthyCount(), e.Config().Devices)
		}
		return g, trace
	}

	g, trace := run()
	if g.Resizes != 2 || g.Readmits != 1 {
		t.Fatalf("resizes=%d readmits=%d, want 2 (shrink+grow) and 1", g.Resizes, g.Readmits)
	}
	if g.Rollbacks != 0 || g.JITSnapshots != 0 {
		t.Fatalf("elastic ran rollbacks=%d jitSnapshots=%d, want 0/0", g.Rollbacks, g.JITSnapshots)
	}
	if ttr := g.TimeToRecover(); ttr != repair-onset {
		t.Fatalf("TimeToRecover = %d, want the outage window %d", ttr, repair-onset)
	}
	if g.DegradedIters != repair-onset {
		t.Fatalf("DegradedIters = %d, want %d", g.DegradedIters, repair-onset)
	}
	if trace.Completed != iters || trace.NonFiniteIter != -1 {
		t.Fatalf("completed=%d nonfinite@%d", trace.Completed, trace.NonFiniteIter)
	}

	g2, trace2 := run()
	if !reflect.DeepEqual(g.Events, g2.Events) {
		t.Fatalf("elastic runs diverge in events:\n%+v\n%+v", g.Events, g2.Events)
	}
	for i := range trace.TrainLoss {
		if math.Float64bits(trace.TrainLoss[i]) != math.Float64bits(trace2.TrainLoss[i]) {
			t.Fatalf("elastic runs diverge bitwise at iteration %d: %v vs %v",
				i, trace.TrainLoss[i], trace2.TrainLoss[i])
		}
	}
}

// TestGroupGuardParallelMatchesSerial (the SetDeviceParallel equivalence
// check for the recovery layer): for every strategy and a representative
// fault of each class, running the guard with per-device goroutines must
// produce the identical Events, counters, and bitwise trace as the serial
// loop. ci.sh runs this under -race, so the JIT background-restore and
// elastic re-partition paths can never silently race the stepping loop.
func TestGroupGuardParallelMatchesSerial(t *testing.T) {
	const iters = 30
	scenarios := []struct {
		label    string
		strategy Strategy
		df       fault.DeviceFault
	}{
		{"reexec-crash", StrategyReexec,
			fault.DeviceFault{Kind: fault.DeviceCrash, Device: 1, Iteration: 5, RepairIter: 10}},
		{"reexec-stuckat", StrategyReexec,
			fault.DeviceFault{Kind: fault.DeviceStuckAt, Device: 3, Iteration: 8, BitPos: 30, Lane: 2}},
		{"jit-crash", StrategyJIT,
			fault.DeviceFault{Kind: fault.DeviceCrash, Device: 2, Iteration: 5, RepairIter: 10}},
		{"elastic-crash", StrategyElastic,
			fault.DeviceFault{Kind: fault.DeviceCrash, Device: 4, Iteration: 6, RepairIter: 12}},
		{"degraded-crash", StrategyDegraded,
			fault.DeviceFault{Kind: fault.DeviceCrash, Device: 5, Iteration: 7}},
	}
	for _, sc := range scenarios {
		t.Run(sc.label, func(t *testing.T) {
			run := func(parallel bool) (*GroupGuard, *train.Trace) {
				e := resnetEngine()
				e.SetDeviceParallel(parallel)
				e.Group().Arm(sc.df)
				g := NewGroupGuard(e)
				g.Strategy = sc.strategy
				if sc.strategy == StrategyDegraded {
					g.RejoinAfter = 0
				}
				trace := train.NewTrace("resnet")
				if err := g.Run(0, iters, trace); err != nil {
					t.Fatalf("GroupGuard.Run(parallel=%v): %v", parallel, err)
				}
				return g, trace
			}
			sg, st := run(false)
			pg, pt := run(true)

			if !reflect.DeepEqual(sg.Events, pg.Events) {
				t.Fatalf("events diverge:\nserial   %+v\nparallel %+v", sg.Events, pg.Events)
			}
			serialCounts := []int{sg.Quarantines, sg.Rejoins, sg.Rollbacks, sg.DegradedIters,
				sg.RejoinFailures, sg.JITSnapshots, sg.Resizes, sg.Readmits, sg.CorruptElems}
			parallelCounts := []int{pg.Quarantines, pg.Rejoins, pg.Rollbacks, pg.DegradedIters,
				pg.RejoinFailures, pg.JITSnapshots, pg.Resizes, pg.Readmits, pg.CorruptElems}
			if !reflect.DeepEqual(serialCounts, parallelCounts) {
				t.Fatalf("counters diverge:\nserial   %v\nparallel %v", serialCounts, parallelCounts)
			}
			if st.Completed != pt.Completed || st.NonFiniteIter != pt.NonFiniteIter {
				t.Fatalf("traces diverge: completed %d/%d nonfinite %d/%d",
					st.Completed, pt.Completed, st.NonFiniteIter, pt.NonFiniteIter)
			}
			for i := range st.TrainLoss {
				if math.Float64bits(st.TrainLoss[i]) != math.Float64bits(pt.TrainLoss[i]) {
					t.Fatalf("traces diverge bitwise at iteration %d: %v vs %v",
						i, st.TrainLoss[i], pt.TrainLoss[i])
				}
			}
		})
	}
}
