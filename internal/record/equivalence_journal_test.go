package record

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/outcome"
	"repro/internal/workloads"
)

// equivJournalConfig is a single-worker dedup + early-exit campaign whose
// injection population (a pure function of the config) contains both dedup
// duplicates and masked early exits. One worker makes the journal's append
// order deterministic: experiments in index order, each dedup owner
// immediately followed by its adoptees.
func equivJournalConfig(t *testing.T) experiment.Config {
	t.Helper()
	w, err := workloads.ByName("resnet")
	if err != nil {
		t.Fatal(err)
	}
	w.Iters = 12 // shrink for test speed
	return experiment.Config{Workload: w, Experiments: 24, Seed: 9, HorizonMult: 1.5,
		Workers: 1, Dedup: true, EarlyExit: true}
}

// runJournaled executes cfg journaling to path, optionally cancelling after
// `interruptAfter` appends (0 = run to completion), and returns the prior
// map a subsequent OpenJournal replays (nil when run to completion).
func runJournaled(t *testing.T, cfg experiment.Config, g *experiment.Golden, path string, interruptAfter int) {
	t.Helper()
	digest := g.Ref().Digest()
	var j *Journal
	var prior map[int]experiment.Record
	var err error
	if _, statErr := os.Stat(path); statErr == nil {
		j, prior, err = OpenJournal(path, cfg, digest)
	} else {
		j, err = CreateJournal(path, cfg, digest)
	}
	if err != nil {
		t.Fatal(err)
	}
	opts := experiment.RunOptions{Golden: g, Prior: prior, Sink: j}
	if interruptAfter > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opts.Context = ctx
		opts.Sink = &interruptingSink{Journal: j, after: interruptAfter, cancel: cancel}
	}
	_, runErr := experiment.Resume(cfg, opts)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		t.Fatal(runErr)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDedupJournalInterruptByteIdentity is the satellite end-to-end proof:
// SIGINT a single-worker dedup + early-exit campaign mid-run (modeled as
// context cancellation at a controlled append count — the same path the
// signal handler drives), resume it, and require the merged journal to be
// BYTE-identical to an uninterrupted dedup run's journal, and its outcome
// Tally identical to exhaustive execution.
func TestDedupJournalInterruptByteIdentity(t *testing.T) {
	cfg := equivJournalConfig(t)
	g := experiment.PrepareGolden(cfg)
	digest := g.Ref().Digest()

	dir := t.TempDir()
	unbroken := filepath.Join(dir, "unbroken.jsonl")
	runJournaled(t, cfg, g, unbroken, 0)
	want, err := os.ReadFile(unbroken)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 9} {
		path := filepath.Join(dir, "interrupted.jsonl")
		runJournaled(t, cfg, g, path, k)
		partial, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(partial) >= len(want) {
			t.Fatalf("K=%d: interruption did not interrupt: partial journal %d bytes, full %d",
				k, len(partial), len(want))
		}
		runJournaled(t, cfg, g, path, 0) // resume to completion
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("K=%d: resumed journal is not byte-identical to the uninterrupted one (%d vs %d bytes)",
				k, len(got), len(want))
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}

	// The dedup journal's outcomes equal exhaustive execution's.
	_, prior, err := OpenJournal(unbroken, cfg, digest)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != cfg.Experiments {
		t.Fatalf("journal holds %d records, want %d", len(prior), cfg.Experiments)
	}
	exhaustive := cfg
	exhaustive.Dedup = false
	exhaustive.EarlyExit = false
	ex := experiment.RunWithGolden(exhaustive, g)
	var tally outcome.Tally
	for _, rec := range prior {
		tally.Add(rec.Outcome)
	}
	if tally != ex.Tally {
		t.Fatalf("dedup journal tally %+v differs from exhaustive %+v", tally, ex.Tally)
	}
}

// TestJournalRejectsEfficiencyMismatch: a journal written with dedup /
// early-exit enabled must refuse to continue under different efficiency
// flags — the records' provenance bytes would diverge.
func TestJournalRejectsEfficiencyMismatch(t *testing.T) {
	cfg := equivJournalConfig(t)
	g := experiment.PrepareGolden(cfg)
	digest := g.Ref().Digest()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path, cfg, digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	plain := cfg
	plain.Dedup = false
	plain.EarlyExit = false
	_, _, err = OpenJournal(path, plain, digest)
	if err == nil || !strings.Contains(err.Error(), "efficiency") {
		t.Fatalf("want efficiency-mismatch error, got %v", err)
	}
	stride := cfg
	stride.EarlyExitStride = 4
	_, _, err = OpenJournal(path, stride, digest)
	if err == nil || !strings.Contains(err.Error(), "efficiency") {
		t.Fatalf("want efficiency-mismatch error for a different stride, got %v", err)
	}
}
