package record

// Native fuzz targets for the journal reader and repairer: the journal is
// the one file the campaign tool parses that a crash can leave in an
// arbitrary state (torn tail, interleaved garbage, truncated header), so
// its parser must never panic and the repairer must converge — any byte
// soup either parses, fails with an error, or repairs to something that no
// longer reports a torn tail. ci.sh runs both targets as short fuzz smokes.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fuzzHeader is the header fuzz inputs are validated against. A fixed
// literal (rather than a live campaign config) keeps the target fast and
// hermetic; the binding checks only compare strings and ints.
func fuzzHeader() journalHeader {
	return journalHeader{
		Format:       journalFormat,
		Version:      journalVersion,
		RecordSchema: journalRecordSchema,
		Workload:     "resnet",
		Experiments:  8,
		Seed:         11,
		ConfigHash:   "00c0ffee00c0ffee",
		GoldenDigest: "deadbeefdeadbeef",
	}
}

// fuzzSeedCorpus builds representative journal states: valid, torn,
// interleaved, and corrupt.
func fuzzSeedCorpus(t interface{ Fatal(...any) }) [][]byte {
	hdr, err := json.Marshal(fuzzHeader())
	if err != nil {
		t.Fatal(err)
	}
	recLine := `{"i":3,"record":{"injection":{"kind":"g1","pass":"forward","seed_state":1,"seed_stream":2},"outcome":"Benign","final_train_acc":0.5,"final_test_acc":"NaN","non_finite_iter":-1,"detect_iter":-1,"quarantine_iter":-1,"masked":true}}`
	dfLine := `{"i":4,"record":{"injection":{"kind":"datapath","pass":"forward"},"outcome":"DegradedComplete","non_finite_iter":-1,"detect_iter":6,"quarantine_iter":6,"quarantines":1,"device_fault":{"kind":"stuck-at","device":3,"iteration":6,"bit_pos":30}}}`
	h := string(hdr)
	return [][]byte{
		[]byte(h + "\n"),                                // header only
		[]byte(h + "\n" + recLine + "\n"),               // one FF record
		[]byte(h + "\n" + dfLine + "\n"),                // one device-fault record
		[]byte(h + "\n" + recLine + "\n" + recLine),     // torn tail (no trailing newline)
		[]byte(h + "\n" + recLine[:40] + "\n"),          // corrupt interior line
		[]byte(h + "\n" + "\x00\xff garbage\n"),         // binary garbage line
		[]byte(recLine + "\n"),                          // record where the header should be
		[]byte("{}\n"),                                  // empty-object header
		{},                                              // empty file
		[]byte(h + "\n" + recLine + "\n" + recLine[:7]), // torn mid-record
	}
}

// FuzzParseJournal: parseJournal must never panic on arbitrary bytes —
// every input either yields records or a descriptive error.
func FuzzParseJournal(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f) {
		f.Add(seed)
	}
	want := fuzzHeader()
	f.Fuzz(func(t *testing.T, raw []byte) {
		done, err := parseJournal("fuzz.jsonl", raw, want)
		if err == nil {
			// Parsed journals must respect the campaign range contract.
			for i := range done {
				if i < 0 || i >= want.Experiments {
					t.Fatalf("parseJournal accepted out-of-range index %d", i)
				}
			}
		}
	})
}

// FuzzRepairJournal: repairing any byte soup must leave a file that no
// longer reports a torn tail, and repairing twice must be a no-op (the
// repairer converges).
func FuzzRepairJournal(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f) {
		f.Add(seed)
	}
	want := fuzzHeader()
	f.Fuzz(func(t *testing.T, raw []byte) {
		path := filepath.Join(t.TempDir(), "j.jsonl")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := RepairJournal(path); err != nil {
			t.Fatalf("RepairJournal errored on writable file: %v", err)
		}
		repaired, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(repaired) > 0 && repaired[len(repaired)-1] != '\n' {
			t.Fatalf("repair left an unterminated final line (%d bytes)", len(repaired))
		}
		if _, err := parseJournal(path, repaired, want); IsTornTail(err) {
			t.Fatalf("repaired journal still reports a torn tail: %v", err)
		}
		if n, err := RepairJournal(path); n != 0 || err != nil {
			t.Fatalf("second repair not a no-op: removed %d, err %v", n, err)
		}
	})
}
