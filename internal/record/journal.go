package record

// Write-ahead campaign journal: crash-safe JSONL persistence of completed
// FI experiments, so a long campaign (the paper runs tens of thousands of
// injections per workload, Sec 3.3) survives crashes, OOM kills, and
// SIGINT without losing finished work.
//
// Layout: line 1 is a JSON header binding the journal to one exact
// campaign — the Config fingerprint (semantic campaign parameters), the
// seed, and the golden reference run's trace digest (which identifies the
// binary's numeric behavior: any kernel/model/data change alters it). Each
// subsequent line is one completed record, `{"i":<index>,"record":{...}}`,
// appended as the worker pool finishes it and fsynced in batches.
//
// Resume contract: OpenJournal validates every header binding and replays
// the record lines into a map the campaign runner adopts verbatim
// (experiment.Resume). Because records round-trip exactly — finite floats
// are encoded with Go's shortest-round-trip formatting, non-finite ones as
// "+Inf"/"-Inf"/"NaN" markers (record.Float), integers verbatim —
// a resumed campaign is byte-identical to an uninterrupted one
// (TestJournalResumeEquivalence). Any mismatch (different seed, different
// config, different binary, torn or corrupt lines) fails loudly with an
// actionable error instead of silently mixing divergent trajectories; a
// torn final line — the signature of a hard crash mid-append — is
// distinguished as *TornTailError and can be truncated away with
// RepairJournal.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/outcome"
	"repro/internal/telemetry"
)

const (
	// journalFormat / journalVersion identify the container layout.
	journalFormat  = "fi-journal"
	journalVersion = 1
	// journalRecordSchema names the record-line field set; bump when
	// CampaignRecordJSON changes incompatibly. v2 added the device-fault
	// fields (device_fault, quarantine_iter, mitigation counters); v1 lines
	// would decode with a zero QuarantineIter where the live record uses -1,
	// silently breaking the byte-identical resume contract, so they are
	// rejected at the schema gate instead. v3 added the equivalence-layer
	// provenance (adopted_from, early_exit_iter, converged_iter), which has
	// the same zero-vs-(-1) decoding hazard — v2 journals are rejected with
	// a dedicated message below. v4 added the recovery-strategy fields
	// (recovery_strategy, time_to_recover_iters, accuracy_cost, plus the
	// jit/resize/readmit counters); time_to_recover_iters shares the
	// zero-vs-(-1) hazard and accuracy_cost would decode as 0 where the live
	// record holds a measured cost, so v3 journals get the same loud
	// rejection.
	journalRecordSchema = "campaign-record-v4"
	// defaultFlushEvery is the fsync batch size: the journal makes work
	// durable every this many appended records (and on Flush/Close).
	defaultFlushEvery = 16
)

// journalHeader is line 1 of a journal file.
type journalHeader struct {
	Format       string `json:"format"`
	Version      int    `json:"version"`
	RecordSchema string `json:"record_schema"`
	Workload     string `json:"workload"`
	Experiments  int    `json:"experiments"`
	Seed         int64  `json:"seed"`
	ConfigHash   string `json:"config_hash"`
	GoldenDigest string `json:"golden_digest"`
	// DeviceFaults summarizes a device-fault campaign's fault population
	// and mitigation settings ("" for FF campaigns). Checked before the
	// config hash so mixing the two campaign flavors fails with a specific
	// message rather than an opaque fingerprint mismatch.
	DeviceFaults string `json:"device_faults,omitempty"`
	// Efficiency binds the equivalence-layer flags (dedup, early exit,
	// converged tail — experiment.Config.EfficiencyBinding, "" when all
	// off). Dedup and early exit don't change a record's outcome payload,
	// but they do change its provenance bytes (adopted_from /
	// early_exit_iter), so resuming under different flags would break the
	// journal's byte-identity contract; it is rejected here instead.
	Efficiency string `json:"efficiency,omitempty"`
	// Shard marks a per-shard journal of a distributed campaign
	// (internal/dist): the owner-index range "lo-hi" this file covers
	// ("" for monolithic journals, including the merged output of
	// MergeShardJournals — which is how a merged journal's header stays
	// byte-identical to a single-process run's). See shard.go.
	Shard string `json:"shard,omitempty"`
}

// journalLine is one completed experiment.
type journalLine struct {
	Index  int                `json:"i"`
	Record CampaignRecordJSON `json:"record"`
}

// TornTailError reports a journal whose final line is incomplete — the
// normal aftermath of a crash or power loss mid-append. ValidSize is the
// byte offset of the last complete line; everything past it is garbage.
type TornTailError struct {
	Path      string
	ValidSize int64
	TotalSize int64
}

func (e *TornTailError) Error() string {
	return fmt.Sprintf("record: journal %s has a torn final line (%d trailing bytes after offset %d, likely a crash mid-append); run `campaign -repair-journal` or record.RepairJournal to truncate it, then resume",
		e.Path, e.TotalSize-e.ValidSize, e.ValidSize)
}

// Journal is an append-only, fsync-batched campaign record log. It
// implements experiment.Sink; Append is safe for concurrent use by the
// campaign worker pool.
type Journal struct {
	mu         sync.Mutex
	f          *os.File
	bw         *bufio.Writer
	path       string
	pending    int
	flushEvery int
	stats      *telemetry.CampaignStats
}

// SetStats attaches a telemetry ledger; subsequent appends and fsync
// batches are counted on it.
func (j *Journal) SetStats(s *telemetry.CampaignStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stats = s
}

// SetFlushEvery overrides the fsync batch size (records per fsync;
// minimum 1). Smaller batches lose less work to a hard crash, larger
// batches cost fewer fsyncs.
func (j *Journal) SetFlushEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 1 {
		n = 1
	}
	j.flushEvery = n
}

// headerFor derives the header binding a journal to cfg and the golden
// reference run's trace digest.
func headerFor(cfg experiment.Config, goldenDigest string) journalHeader {
	h := journalHeader{
		Format:       journalFormat,
		Version:      journalVersion,
		RecordSchema: journalRecordSchema,
		Workload:     cfg.Workload.Name,
		Experiments:  cfg.Experiments,
		Seed:         cfg.Seed,
		ConfigHash:   cfg.Fingerprint(),
		GoldenDigest: goldenDigest,
	}
	if cfg.DeviceFaults {
		h.DeviceFaults = fmt.Sprintf("kinds=%v quarantine=%t recovery=%s",
			cfg.DeviceFaultKinds, cfg.Quarantine, cfg.ResolvedRecovery())
	}
	h.Efficiency = cfg.EfficiencyBinding()
	return h
}

// CreateJournal creates a new journal at path for the campaign described
// by cfg, whose golden reference trace hashes to goldenDigest
// (train.Trace.Digest of experiment.Golden.Ref()). The header is written
// and fsynced before returning, so even an immediately-killed campaign
// leaves a resumable (empty) journal. Fails if path already exists —
// continuing an existing journal goes through OpenJournal.
func CreateJournal(path string, cfg experiment.Config, goldenDigest string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("record: creating journal: %w", err)
	}
	j := &Journal{f: f, bw: bufio.NewWriter(f), path: path, flushEvery: defaultFlushEvery}
	if err := j.writeHeader(headerFor(cfg, goldenDigest)); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.flushLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// writeHeader marshals hdr and buffers it as line 1 (callers flush).
func (j *Journal) writeHeader(hdr journalHeader) error {
	b, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("record: encoding journal header: %w", err)
	}
	j.bw.Write(b)
	if err := j.bw.WriteByte('\n'); err != nil {
		return fmt.Errorf("record: writing journal header to %s: %w", j.path, err)
	}
	return nil
}

// OpenJournal opens an existing journal for resumption: it validates that
// the header matches cfg and goldenDigest, replays every record line, and
// reopens the file for appending. The returned map holds the completed
// records by experiment index, ready for experiment.RunOptions.Prior.
//
// Every mismatch is a distinct loud error: wrong format/version/schema
// (journal from an incompatible tool or release), wrong workload /
// experiment count / seed / config hash (journal from a different
// campaign), wrong golden digest (journal from a different binary — the
// numeric kernels, model definitions, or datasets changed, so the golden
// trajectory this journal's records forked from no longer exists), torn
// final line (*TornTailError, repairable), or corrupt/duplicate/
// out-of-range record lines.
func OpenJournal(path string, cfg experiment.Config, goldenDigest string) (*Journal, map[int]experiment.Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("record: opening journal: %w", err)
	}
	done, err := parseJournal(path, raw, headerFor(cfg, goldenDigest))
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("record: reopening journal for append: %w", err)
	}
	j := &Journal{f: f, bw: bufio.NewWriter(f), path: path, flushEvery: defaultFlushEvery}
	return j, done, nil
}

// parseJournal validates raw journal bytes against the expected header and
// replays the record lines.
func parseJournal(path string, raw []byte, want journalHeader) (map[int]experiment.Record, error) {
	recLines, err := journalRecordLines(path, raw, want)
	if err != nil {
		return nil, err
	}
	return decodeRecordLines(path, recLines, want.Experiments)
}

// journalRecordLines validates the header of raw journal bytes and returns
// the raw record lines that follow it, verbatim and in file order.
func journalRecordLines(path string, raw []byte, want journalHeader) ([]string, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("record: journal %s is empty (not even a header); delete it and start fresh", path)
	}
	lines, err := splitJournalLines(path, raw)
	if err != nil {
		return nil, err
	}
	var got journalHeader
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		return nil, fmt.Errorf("record: journal %s: unparseable header: %v; delete the file and start fresh", path, err)
	}
	if got.Format != want.Format || got.Version != want.Version {
		return nil, fmt.Errorf("record: journal %s has format %s v%d, this binary writes %s v%d — produced by an incompatible tool or release; delete it or use the matching binary",
			path, got.Format, got.Version, want.Format, want.Version)
	}
	if got.RecordSchema != want.RecordSchema {
		if got.RecordSchema == "campaign-record-v2" {
			return nil, fmt.Errorf("record: journal %s uses record schema campaign-record-v2, this binary writes %s — v3 added the equivalence-layer provenance fields (adopted_from, early_exit_iter, converged_iter), and v2 lines would decode them as 0 where the live record uses -1, silently corrupting the byte-identical resume contract; re-run the campaign from scratch",
				path, want.RecordSchema)
		}
		if got.RecordSchema == "campaign-record-v3" {
			return nil, fmt.Errorf("record: journal %s uses record schema campaign-record-v3, this binary writes %s — v4 added the recovery-strategy fields (recovery_strategy, time_to_recover_iters, accuracy_cost), and v3 lines would decode time_to_recover_iters as 0 where the live record uses -1 (and accuracy_cost as 0 where the live record holds a measured cost), silently corrupting the byte-identical resume contract; re-run the campaign from scratch",
				path, want.RecordSchema)
		}
		return nil, fmt.Errorf("record: journal %s uses record schema %q, this binary uses %q — the record layout changed between releases; re-run the campaign from scratch",
			path, got.RecordSchema, want.RecordSchema)
	}
	if got.Workload != want.Workload || got.Experiments != want.Experiments || got.Seed != want.Seed {
		return nil, fmt.Errorf("record: journal %s was written for campaign {workload=%s n=%d seed=%d}, but this run is {workload=%s n=%d seed=%d} — point -journal at the matching file or adjust the flags",
			path, got.Workload, got.Experiments, got.Seed, want.Workload, want.Experiments, want.Seed)
	}
	if got.DeviceFaults != want.DeviceFaults {
		return nil, fmt.Errorf("record: journal %s was written for a campaign with device-fault settings %q, but this run uses %q — FF and device-fault campaigns (and different mitigation settings) sample different fault populations and cannot share a journal; point -journal at the matching file or start a new one",
			path, got.DeviceFaults, want.DeviceFaults)
	}
	if got.Efficiency != want.Efficiency {
		return nil, fmt.Errorf("record: journal %s was written with efficiency settings %q, but this run uses %q — dedup/early-exit/converged-tail change the records' provenance bytes, so a journal cannot be continued under different flags; resume with the original flags or start a new journal",
			path, got.Efficiency, want.Efficiency)
	}
	if got.ConfigHash != want.ConfigHash {
		return nil, fmt.Errorf("record: journal %s config fingerprint %s does not match this campaign's %s — a semantic parameter (horizon, injection window, bias, workload shape) differs; resume with the original parameters or start a new journal",
			path, got.ConfigHash, want.ConfigHash)
	}
	if got.GoldenDigest != want.GoldenDigest {
		return nil, fmt.Errorf("record: journal %s golden-run digest %s does not match this binary's %s — the journal was written by a different binary (numeric kernels, model definitions, or datasets changed), so its records forked from a trajectory this binary cannot reproduce; re-run the campaign from scratch",
			path, got.GoldenDigest, want.GoldenDigest)
	}
	if got.Shard != want.Shard {
		if want.Shard == "" {
			return nil, fmt.Errorf("record: journal %s is a per-shard journal covering owner range %s of a distributed campaign, not a whole-campaign journal — merge the campaign's shards (record.MergeShardJournals / campaignd) instead of resuming from one of them",
				path, got.Shard)
		}
		return nil, fmt.Errorf("record: journal %s covers shard %q, expected shard %q — the file belongs to a different shard of the campaign; point at the matching shard journal",
			path, got.Shard, want.Shard)
	}
	return lines[1:], nil
}

// decodeRecordLines replays raw record lines into completed records by
// experiment index, rejecting corrupt, out-of-range, and duplicate lines.
// path labels errors ("" for lines that never lived in a file, e.g. a
// shard upload arriving at the campaignd coordinator).
func decodeRecordLines(path string, lines []string, experiments int) (map[int]experiment.Record, error) {
	src, skew := "journal "+path, 2 // +2: 1-based, after the header line
	if path == "" {
		src, skew = "record lines", 1
	}
	done := make(map[int]experiment.Record, len(lines))
	for ln, line := range lines {
		var jl journalLine
		if err := json.Unmarshal([]byte(line), &jl); err != nil {
			return nil, fmt.Errorf("record: %s line %d is corrupt (%v) — the file was modified outside the campaign tool; restore it from backup or start fresh", src, ln+skew, err)
		}
		if jl.Index < 0 || jl.Index >= experiments {
			return nil, fmt.Errorf("record: %s line %d: record index %d outside campaign range [0,%d)", src, ln+skew, jl.Index, experiments)
		}
		if _, dup := done[jl.Index]; dup {
			return nil, fmt.Errorf("record: %s line %d: duplicate record for experiment %d — the journal was appended to by two concurrent campaigns; start fresh", src, ln+skew, jl.Index)
		}
		rec, err := DecodeCampaignRecord(jl.Record)
		if err != nil {
			return nil, fmt.Errorf("record: %s line %d: %w", src, ln+skew, err)
		}
		done[jl.Index] = rec
	}
	return done, nil
}

// DecodeJournalLines replays raw journal record lines (as produced by
// EncodeJournalLine / LineBuffer, without the header) into completed
// records by experiment index. Corrupt, out-of-range, and duplicate lines
// are rejected loudly. The campaignd coordinator validates every ingested
// shard upload through this before accepting it.
func DecodeJournalLines(lines []string, experiments int) (map[int]experiment.Record, error) {
	return decodeRecordLines("", lines, experiments)
}

// splitJournalLines splits raw into newline-terminated lines, reporting a
// torn tail when the final line is unterminated (crash mid-append).
func splitJournalLines(path string, raw []byte) ([]string, error) {
	if raw[len(raw)-1] != '\n' {
		valid := int64(strings.LastIndexByte(string(raw), '\n') + 1)
		return nil, &TornTailError{Path: path, ValidSize: valid, TotalSize: int64(len(raw))}
	}
	var lines []string
	for _, l := range strings.Split(string(raw), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("record: journal %s contains no header line; delete it and start fresh", path)
	}
	return lines, nil
}

// RepairJournal truncates a torn final line (see TornTailError), returning
// the number of bytes removed. A journal without a torn tail is left
// untouched (returns 0). The lost partial record simply re-runs on resume.
func RepairJournal(path string) (removed int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("record: repairing journal: %w", err)
	}
	if len(raw) == 0 || raw[len(raw)-1] == '\n' {
		return 0, nil
	}
	valid := int64(strings.LastIndexByte(string(raw), '\n') + 1)
	if err := os.Truncate(path, valid); err != nil {
		return 0, fmt.Errorf("record: truncating torn journal tail: %w", err)
	}
	return int64(len(raw)) - valid, nil
}

// EncodeJournalLine renders one completed record as the exact journal line
// bytes Journal.Append writes, without the trailing newline. Shared with
// LineBuffer so a distributed worker's in-memory shard lines are
// byte-identical to what a local journal would have appended.
func EncodeJournalLine(idx int, rec experiment.Record) ([]byte, error) {
	line, err := json.Marshal(journalLine{Index: idx, Record: EncodeCampaignRecord(&rec)})
	if err != nil {
		return nil, fmt.Errorf("record: encoding journal record %d: %w", idx, err)
	}
	return line, nil
}

// Append writes one completed record. Safe for concurrent use; the write
// becomes durable at the next fsync batch boundary, Flush, or Close.
func (j *Journal) Append(idx int, rec experiment.Record) error {
	line, err := EncodeJournalLine(idx, rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("record: append to closed journal %s", j.path)
	}
	j.bw.Write(line)
	if err := j.bw.WriteByte('\n'); err != nil {
		return fmt.Errorf("record: appending to journal %s: %w", j.path, err)
	}
	j.stats.JournalAppend()
	j.pending++
	if j.pending >= j.flushEvery {
		return j.flushLocked()
	}
	return nil
}

// Flush forces buffered records to disk (write + fsync).
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.flushLocked()
}

func (j *Journal) flushLocked() error {
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("record: flushing journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("record: fsyncing journal %s: %w", j.path, err)
	}
	j.pending = 0
	j.stats.JournalFlush()
	return nil
}

// Close flushes and closes the journal. The Journal must not be used
// afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	flushErr := j.flushLocked()
	closeErr := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return flushErr
	}
	if closeErr != nil {
		return fmt.Errorf("record: closing journal %s: %w", j.path, closeErr)
	}
	return nil
}

// statically assert the Sink contract.
var _ experiment.Sink = (*Journal)(nil)

// EncodeCampaignRecord converts one experiment record to its wire form
// (shared by campaign archives and the journal).
func EncodeCampaignRecord(r *experiment.Record) CampaignRecordJSON {
	return CampaignRecordJSON{
		Injection:     EncodeInjection(r.Injection),
		Outcome:       r.Outcome.String(),
		FinalTrainAcc: Float(r.FinalTrainAcc),
		FinalTestAcc:  Float(r.FinalTestAcc),
		NonFiniteIter: r.NonFiniteIter,
		HistAtT:       Float(r.HistAtT), HistAtT1: Float(r.HistAtT1),
		MvarAtT: Float(r.MvarAtT), MvarAtT1: Float(r.MvarAtT1),
		DetectIter:     r.DetectIter,
		InjectedElems:  r.InjectedElems,
		Masked:         r.Masked,
		DeviceFault:    encodeDeviceFaultPtr(r.DeviceFault),
		QuarantineIter: r.QuarantineIter,
		Quarantines:    r.Quarantines,
		Rejoins:        r.Rejoins,
		DegradedIters:  r.DegradedIters,
		CommRetries:    r.CommRetries,
		AdoptedFrom:    r.AdoptedFrom,
		EarlyExitIter:  r.EarlyExitIter,
		ConvergedIter:  r.ConvergedIter,

		RecoveryStrategy:   r.RecoveryStrategy,
		TimeToRecoverIters: r.TimeToRecoverIters,
		AccuracyCost:       Float(r.AccuracyCost),
		JITSnapshots:       r.JITSnapshots,
		Resizes:            r.Resizes,
		Readmits:           r.Readmits,
	}
}

// encodeDeviceFaultPtr keeps FF-record lines free of the device-fault
// object: only records carrying a real fault encode one.
func encodeDeviceFaultPtr(f fault.DeviceFault) *DeviceFaultJSON {
	if f.Kind == fault.DeviceFaultNone {
		return nil
	}
	j := EncodeDeviceFault(f)
	return &j
}

// DecodeCampaignRecord converts the wire form back to a live record. The
// round trip is exact: JSON numbers are written with shortest-round-trip
// float formatting and parsed back to the identical bit patterns, which is
// what lets a resumed campaign be byte-identical to an uninterrupted one.
func DecodeCampaignRecord(j CampaignRecordJSON) (experiment.Record, error) {
	inj, err := DecodeInjection(j.Injection)
	if err != nil {
		return experiment.Record{}, err
	}
	o, err := outcomeFromName(j.Outcome)
	if err != nil {
		return experiment.Record{}, err
	}
	rec := experiment.Record{
		Injection:     inj,
		Outcome:       o,
		FinalTrainAcc: float64(j.FinalTrainAcc),
		FinalTestAcc:  float64(j.FinalTestAcc),
		NonFiniteIter: j.NonFiniteIter,
		HistAtT:       float64(j.HistAtT), HistAtT1: float64(j.HistAtT1),
		MvarAtT: float64(j.MvarAtT), MvarAtT1: float64(j.MvarAtT1),
		DetectIter:     j.DetectIter,
		InjectedElems:  j.InjectedElems,
		Masked:         j.Masked,
		QuarantineIter: j.QuarantineIter,
		Quarantines:    j.Quarantines,
		Rejoins:        j.Rejoins,
		DegradedIters:  j.DegradedIters,
		CommRetries:    j.CommRetries,
		AdoptedFrom:    j.AdoptedFrom,
		EarlyExitIter:  j.EarlyExitIter,
		ConvergedIter:  j.ConvergedIter,

		RecoveryStrategy:   j.RecoveryStrategy,
		TimeToRecoverIters: j.TimeToRecoverIters,
		AccuracyCost:       float64(j.AccuracyCost),
		JITSnapshots:       j.JITSnapshots,
		Resizes:            j.Resizes,
		Readmits:           j.Readmits,
	}
	if j.DeviceFault != nil {
		df, err := DecodeDeviceFault(*j.DeviceFault)
		if err != nil {
			return experiment.Record{}, err
		}
		rec.DeviceFault = df
	}
	return rec, nil
}

// outcomeFromName resolves a serialized outcome name or errors.
func outcomeFromName(name string) (outcome.Outcome, error) {
	if o := outcomeByName(name); o != nil {
		return *o, nil
	}
	return 0, fmt.Errorf("record: unknown outcome %q", name)
}

// IsTornTail reports whether err is a repairable torn-tail journal error.
func IsTornTail(err error) bool {
	var t *TornTailError
	return errors.As(err, &t)
}
