// Package record serializes traces, injections, and campaign results so
// experiments can be archived, diffed, and replayed — the repository
// counterpart of the paper artifact's replay_inj_*.txt output files and
// injection config CSVs.
//
// Three formats are provided:
//
//   - JSON for full-fidelity round trips (traces, injections, campaign
//     records);
//   - the artifact's line-oriented text format for traces ("iter N loss L
//     acc A"), which is convenient to eyeball and to plot; and
//   - the write-ahead campaign journal (journal.go): an append-only,
//     fsync-batched JSONL log of completed experiments whose header binds
//     it to one exact campaign (config fingerprint, seed, golden-run
//     digest), making long campaigns crash-safe and resumable
//     byte-identically via experiment.Resume.
package record

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/accel"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/train"
)

// InjectionJSON is the serializable form of a fault injection. It is a
// plain mirror of fault.Injection with stable field names, so recorded
// experiments survive refactors of the internal type.
type InjectionJSON struct {
	Kind      string  `json:"kind"`
	LayerIdx  int     `json:"layer"`
	Pass      string  `json:"pass"`
	Iteration int     `json:"iteration"`
	CycleFrac float64 `json:"cycle_frac"`
	N         int     `json:"n"`
	Unit      int     `json:"unit"`
	DeltaFrac float64 `json:"delta_frac"`
	BitPos    uint    `json:"bit_pos"`
	Source    string  `json:"source,omitempty"`
	SeedState uint64  `json:"seed_state"`
	SeedStrm  uint64  `json:"seed_stream"`
}

// kindToName and passToName give stable serialization names.
var kindToName = map[accel.FFKind]string{
	accel.DatapathOther: "datapath", accel.DatapathUpperExponent: "upper-exp",
	accel.LocalControl: "local",
	accel.GlobalG1:     "g1", accel.GlobalG2: "g2", accel.GlobalG3: "g3",
	accel.GlobalG4: "g4", accel.GlobalG5: "g5", accel.GlobalG6: "g6",
	accel.GlobalG7: "g7", accel.GlobalG8: "g8", accel.GlobalG9: "g9",
	accel.GlobalG10: "g10",
}

var passToName = map[fault.Pass]string{
	fault.Forward: "forward", fault.BackwardInput: "backward-input",
	fault.BackwardWeight: "backward-weight",
}

// KindFromName resolves a serialized FF kind name.
func KindFromName(name string) (accel.FFKind, error) {
	for k, n := range kindToName {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("record: unknown FF kind %q", name)
}

// PassFromName resolves a serialized pass name.
func PassFromName(name string) (fault.Pass, error) {
	for p, n := range passToName {
		if n == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("record: unknown pass %q", name)
}

// EncodeInjection converts an injection to its serializable form.
func EncodeInjection(inj fault.Injection) InjectionJSON {
	return InjectionJSON{
		Kind: kindToName[inj.Kind], LayerIdx: inj.LayerIdx,
		Pass: passToName[inj.Pass], Iteration: inj.Iteration,
		CycleFrac: inj.CycleFrac, N: inj.N, Unit: inj.Unit,
		DeltaFrac: inj.DeltaFrac, BitPos: inj.BitPos,
		Source:    inj.Source.String(),
		SeedState: inj.Seed.State, SeedStrm: inj.Seed.Stream,
	}
}

// DecodeInjection converts the serialized form back.
func DecodeInjection(j InjectionJSON) (fault.Injection, error) {
	kind, err := KindFromName(j.Kind)
	if err != nil {
		return fault.Injection{}, err
	}
	pass, err := PassFromName(j.Pass)
	if err != nil {
		return fault.Injection{}, err
	}
	source := fault.FromDRAM
	switch j.Source {
	case "", "dram":
	case "on-chip":
		source = fault.FromOnChip
	default:
		return fault.Injection{}, fmt.Errorf("record: unknown fetch source %q", j.Source)
	}
	return fault.Injection{
		Kind: kind, LayerIdx: j.LayerIdx, Pass: pass, Iteration: j.Iteration,
		CycleFrac: j.CycleFrac, N: j.N, Unit: j.Unit, DeltaFrac: j.DeltaFrac,
		BitPos: j.BitPos, Source: source,
		Seed: rng.Seed{State: j.SeedState, Stream: j.SeedStrm},
	}, nil
}

// WriteInjectionJSON serializes an injection to w.
func WriteInjectionJSON(w io.Writer, inj fault.Injection) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(EncodeInjection(inj))
}

// ReadInjectionJSON parses an injection from r.
func ReadInjectionJSON(r io.Reader) (fault.Injection, error) {
	var j InjectionJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return fault.Injection{}, fmt.Errorf("record: parsing injection: %w", err)
	}
	return DecodeInjection(j)
}

// DeviceFaultJSON is the serializable form of a system-level device/link
// fault — like InjectionJSON, a plain mirror of fault.DeviceFault with
// stable field names.
type DeviceFaultJSON struct {
	Kind       string `json:"kind"`
	Device     int    `json:"device"`
	Iteration  int    `json:"iteration"`
	BitPos     uint   `json:"bit_pos"`
	Lane       int    `json:"lane"`
	Flips      int    `json:"flips"`
	DelayTicks int    `json:"delay_ticks"`
	RepairIter int    `json:"repair_iter"`
	SeedState  uint64 `json:"seed_state"`
	SeedStrm   uint64 `json:"seed_stream"`
}

// EncodeDeviceFault converts a device fault to its serializable form.
func EncodeDeviceFault(f fault.DeviceFault) DeviceFaultJSON {
	return DeviceFaultJSON{
		Kind: f.Kind.String(), Device: f.Device, Iteration: f.Iteration,
		BitPos: f.BitPos, Lane: f.Lane, Flips: f.Flips,
		DelayTicks: f.DelayTicks, RepairIter: f.RepairIter,
		SeedState: f.Seed.State, SeedStrm: f.Seed.Stream,
	}
}

// DecodeDeviceFault converts the serialized form back.
func DecodeDeviceFault(j DeviceFaultJSON) (fault.DeviceFault, error) {
	kind, ok := fault.DeviceFaultKindByName(j.Kind)
	if !ok {
		return fault.DeviceFault{}, fmt.Errorf("record: unknown device-fault kind %q", j.Kind)
	}
	return fault.DeviceFault{
		Kind: kind, Device: j.Device, Iteration: j.Iteration,
		BitPos: j.BitPos, Lane: j.Lane, Flips: j.Flips,
		DelayTicks: j.DelayTicks, RepairIter: j.RepairIter,
		Seed: rng.Seed{State: j.SeedState, Stream: j.SeedStrm},
	}, nil
}

// TraceJSON is the serializable form of a training trace.
type TraceJSON struct {
	Workload      string    `json:"workload"`
	FaultIter     int       `json:"fault_iter"`
	TrainLoss     []float64 `json:"train_loss"`
	TrainAcc      []float64 `json:"train_acc"`
	TestIters     []int     `json:"test_iters,omitempty"`
	TestAcc       []float64 `json:"test_acc,omitempty"`
	TestLoss      []float64 `json:"test_loss,omitempty"`
	NonFiniteIter int       `json:"non_finite_iter"`
	NonFiniteAt   string    `json:"non_finite_at,omitempty"`
	Completed     int       `json:"completed"`
}

// WriteTraceJSON serializes a trace to w.
func WriteTraceJSON(w io.Writer, t *train.Trace) error {
	j := TraceJSON{
		Workload: t.Workload, FaultIter: t.FaultIter,
		TrainLoss: t.TrainLoss, TrainAcc: t.TrainAcc,
		TestIters: t.TestIters, TestAcc: t.TestAcc, TestLoss: t.TestLoss,
		NonFiniteIter: t.NonFiniteIter, NonFiniteAt: t.NonFiniteAt,
		Completed: t.Completed,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadTraceJSON parses a trace from r.
func ReadTraceJSON(r io.Reader) (*train.Trace, error) {
	var j TraceJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("record: parsing trace: %w", err)
	}
	t := train.NewTrace(j.Workload)
	t.FaultIter = j.FaultIter
	t.TrainLoss = j.TrainLoss
	t.TrainAcc = j.TrainAcc
	t.TestIters = j.TestIters
	t.TestAcc = j.TestAcc
	t.TestLoss = j.TestLoss
	t.NonFiniteIter = j.NonFiniteIter
	t.NonFiniteAt = j.NonFiniteAt
	t.Completed = j.Completed
	return t, nil
}

// WriteTraceText writes the artifact-style line format:
//
//	# workload resnet fault_iter 40
//	iter 0 loss 1.3862 acc 0.2500
//	...
//	test 99 loss 0.4210 acc 0.8750
//	nan 41 loss@device0
func WriteTraceText(w io.Writer, t *train.Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# workload %s fault_iter %d\n", t.Workload, t.FaultIter)
	for i := range t.TrainLoss {
		fmt.Fprintf(bw, "iter %d loss %.6g acc %.6g\n", i, t.TrainLoss[i], t.TrainAcc[i])
	}
	for i, it := range t.TestIters {
		fmt.Fprintf(bw, "test %d loss %.6g acc %.6g\n", it, t.TestLoss[i], t.TestAcc[i])
	}
	if t.NonFiniteIter >= 0 {
		fmt.Fprintf(bw, "nan %d %s\n", t.NonFiniteIter, t.NonFiniteAt)
	}
	return bw.Flush()
}

// ReadTraceText parses the artifact-style line format.
func ReadTraceText(r io.Reader) (*train.Trace, error) {
	sc := bufio.NewScanner(r)
	t := train.NewTrace("")
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "#":
			// "# workload NAME fault_iter N"
			for i := 1; i+1 < len(fields); i += 2 {
				switch fields[i] {
				case "workload":
					t.Workload = fields[i+1]
				case "fault_iter":
					v, err := strconv.Atoi(fields[i+1])
					if err != nil {
						return nil, fmt.Errorf("record: line %d: bad fault_iter: %w", lineNo, err)
					}
					t.FaultIter = v
				}
			}
		case "iter":
			if len(fields) != 6 {
				return nil, fmt.Errorf("record: line %d: malformed iter line", lineNo)
			}
			loss, err1 := strconv.ParseFloat(fields[3], 64)
			acc, err2 := strconv.ParseFloat(fields[5], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("record: line %d: bad numbers", lineNo)
			}
			t.TrainLoss = append(t.TrainLoss, loss)
			t.TrainAcc = append(t.TrainAcc, acc)
			t.Completed++
		case "test":
			if len(fields) != 6 {
				return nil, fmt.Errorf("record: line %d: malformed test line", lineNo)
			}
			it, err0 := strconv.Atoi(fields[1])
			loss, err1 := strconv.ParseFloat(fields[3], 64)
			acc, err2 := strconv.ParseFloat(fields[5], 64)
			if err0 != nil || err1 != nil || err2 != nil {
				return nil, fmt.Errorf("record: line %d: bad numbers", lineNo)
			}
			t.TestIters = append(t.TestIters, it)
			t.TestLoss = append(t.TestLoss, loss)
			t.TestAcc = append(t.TestAcc, acc)
		case "nan":
			if len(fields) < 2 {
				return nil, fmt.Errorf("record: line %d: malformed nan line", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("record: line %d: bad nan iter: %w", lineNo, err)
			}
			t.NonFiniteIter = v
			if len(fields) >= 3 {
				t.NonFiniteAt = fields[2]
			}
		default:
			return nil, fmt.Errorf("record: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("record: reading trace: %w", err)
	}
	return t, nil
}

// Float carries a float64 that may be non-finite through JSON. A fault
// that blows up the gradient history or moving variance leaves ±Inf/NaN in
// a record's hist/mvar fields — values encoding/json refuses to emit — so
// these marshal as the strings "+Inf", "-Inf", "NaN" and decode back to
// the identical values. Finite values use Go's shortest-round-trip float
// formatting, preserving bit patterns exactly.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf":
			*f = Float(math.Inf(1))
		case "-Inf":
			*f = Float(math.Inf(-1))
		case "NaN":
			*f = Float(math.NaN())
		default:
			return fmt.Errorf("record: %q is not a non-finite float marker (+Inf, -Inf, NaN)", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// CampaignRecordJSON is the serializable form of one campaign experiment.
type CampaignRecordJSON struct {
	Injection     InjectionJSON `json:"injection"`
	Outcome       string        `json:"outcome"`
	FinalTrainAcc Float         `json:"final_train_acc"`
	FinalTestAcc  Float         `json:"final_test_acc"`
	NonFiniteIter int           `json:"non_finite_iter"`
	HistAtT       Float         `json:"hist_at_t"`
	HistAtT1      Float         `json:"hist_at_t1"`
	MvarAtT       Float         `json:"mvar_at_t"`
	MvarAtT1      Float         `json:"mvar_at_t1"`
	DetectIter    int           `json:"detect_iter"`
	InjectedElems int           `json:"injected_elems"`
	Masked        bool          `json:"masked"`
	// Device-fault campaign fields (schema v2). DeviceFault is nil on FF
	// records; QuarantineIter is always encoded (-1 = never) so the
	// round trip stays exact for both campaign flavors.
	DeviceFault    *DeviceFaultJSON `json:"device_fault,omitempty"`
	QuarantineIter int              `json:"quarantine_iter"`
	Quarantines    int              `json:"quarantines,omitempty"`
	Rejoins        int              `json:"rejoins,omitempty"`
	DegradedIters  int              `json:"degraded_iters,omitempty"`
	CommRetries    int              `json:"comm_retries,omitempty"`
	// Equivalence-layer provenance (schema v3). Like quarantine_iter these
	// are always encoded with -1 as the "did not happen" value, so the
	// round trip stays exact whether or not the campaign ran with
	// -dedup/-early-exit/-converged-tail.
	AdoptedFrom   int `json:"adopted_from"`
	EarlyExitIter int `json:"early_exit_iter"`
	ConvergedIter int `json:"converged_iter"`
	// Recovery-strategy fields (schema v4). TimeToRecoverIters is always
	// encoded (-1 = group never returned to full strength) and AccuracyCost
	// always encoded (0 is a legitimate measured cost), so the round trip
	// stays exact across strategies; the activity counters are omitempty
	// because they are zero everywhere except jit/elastic records.
	RecoveryStrategy   string `json:"recovery_strategy,omitempty"`
	TimeToRecoverIters int    `json:"time_to_recover_iters"`
	AccuracyCost       Float  `json:"accuracy_cost"`
	JITSnapshots       int    `json:"jit_snapshots,omitempty"`
	Resizes            int    `json:"resizes,omitempty"`
	Readmits           int    `json:"readmits,omitempty"`
}

// CampaignJSON is the serializable form of a campaign summary.
type CampaignJSON struct {
	Workload    string               `json:"workload"`
	Experiments int                  `json:"experiments"`
	Seed        int64                `json:"seed"`
	RefAcc      float64              `json:"ref_acc"`
	Records     []CampaignRecordJSON `json:"records"`
}

// WriteCampaignJSON serializes a campaign to w.
func WriteCampaignJSON(w io.Writer, c *experiment.Campaign) error {
	j := CampaignJSON{
		Workload:    c.Cfg.Workload.Name,
		Experiments: c.Cfg.Experiments,
		Seed:        c.Cfg.Seed,
		RefAcc:      c.RefAcc,
	}
	for i := range c.Records {
		j.Records = append(j.Records, EncodeCampaignRecord(&c.Records[i]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// WriteCampaignCSV writes one row per experiment for spreadsheet analysis.
func WriteCampaignCSV(w io.Writer, c *experiment.Campaign) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "kind,layer,pass,iteration,n,outcome,final_train_acc,final_test_acc,non_finite_iter,hist_at_t,hist_at_t1,mvar_at_t,mvar_at_t1,detect_iter,injected_elems,masked,adopted_from,early_exit_iter,converged_iter,recovery_strategy,time_to_recover_iters,accuracy_cost")
	for i := range c.Records {
		r := &c.Records[i]
		fmt.Fprintf(bw, "%s,%d,%s,%d,%d,%s,%.6g,%.6g,%d,%.6g,%.6g,%.6g,%.6g,%d,%d,%v,%d,%d,%d,%s,%d,%.6g\n",
			kindToName[r.Injection.Kind], r.Injection.LayerIdx,
			passToName[r.Injection.Pass], r.Injection.Iteration, r.Injection.N,
			r.Outcome, r.FinalTrainAcc, r.FinalTestAcc, r.NonFiniteIter,
			r.HistAtT, r.HistAtT1, r.MvarAtT, r.MvarAtT1,
			r.DetectIter, r.InjectedElems, r.Masked,
			r.AdoptedFrom, r.EarlyExitIter, r.ConvergedIter,
			r.RecoveryStrategy, r.TimeToRecoverIters, r.AccuracyCost)
	}
	return bw.Flush()
}
