package record

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiment"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func journalTestConfig(t *testing.T) experiment.Config {
	t.Helper()
	w, err := workloads.ByName("resnet")
	if err != nil {
		t.Fatal(err)
	}
	w.Iters = 12 // shrink for test speed
	return experiment.Config{Workload: w, Experiments: 5, Seed: 11, HorizonMult: 2, InjectFrac: 0.8, Workers: 2}
}

// journalRecordsEqual is the bit-exact record comparison (NaN-safe).
func journalRecordsEqual(a, b *experiment.Record) bool {
	f64 := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Injection == b.Injection &&
		a.Outcome == b.Outcome &&
		f64(a.FinalTrainAcc, b.FinalTrainAcc) &&
		f64(a.FinalTestAcc, b.FinalTestAcc) &&
		a.NonFiniteIter == b.NonFiniteIter &&
		f64(a.HistAtT, b.HistAtT) && f64(a.HistAtT1, b.HistAtT1) &&
		f64(a.MvarAtT, b.MvarAtT) && f64(a.MvarAtT1, b.MvarAtT1) &&
		a.DetectIter == b.DetectIter &&
		a.InjectedElems == b.InjectedElems &&
		a.Masked == b.Masked &&
		a.DeviceFault == b.DeviceFault &&
		a.QuarantineIter == b.QuarantineIter &&
		a.Quarantines == b.Quarantines &&
		a.Rejoins == b.Rejoins &&
		a.DegradedIters == b.DegradedIters &&
		a.CommRetries == b.CommRetries &&
		a.AdoptedFrom == b.AdoptedFrom &&
		a.EarlyExitIter == b.EarlyExitIter &&
		a.ConvergedIter == b.ConvergedIter &&
		a.RecoveryStrategy == b.RecoveryStrategy &&
		a.TimeToRecoverIters == b.TimeToRecoverIters &&
		f64(a.AccuracyCost, b.AccuracyCost) &&
		a.JITSnapshots == b.JITSnapshots &&
		a.Resizes == b.Resizes &&
		a.Readmits == b.Readmits
}

// interruptingSink journals every record and cancels the campaign after
// `after` appends.
type interruptingSink struct {
	*Journal
	mu     sync.Mutex
	after  int
	seen   int
	cancel context.CancelFunc
}

func (s *interruptingSink) Append(i int, rec experiment.Record) error {
	err := s.Journal.Append(i, rec)
	s.mu.Lock()
	s.seen++
	if s.seen >= s.after {
		s.cancel()
	}
	s.mu.Unlock()
	return err
}

// TestJournalResumeEquivalence is the end-to-end crash-safety proof
// through the real journal: interrupt a journaled campaign after K
// records, reopen the journal (full JSON round trip through disk), resume,
// and require byte-identical Records and Tally versus an uninterrupted
// run.
func TestJournalResumeEquivalence(t *testing.T) {
	cfg := journalTestConfig(t)
	g := experiment.PrepareGolden(cfg)
	digest := g.Ref().Digest()
	want := experiment.RunWithGolden(cfg, g)

	for _, k := range []int{1, 3, 5} {
		path := filepath.Join(t.TempDir(), "run.jsonl")
		j, err := CreateJournal(path, cfg, digest)
		if err != nil {
			t.Fatal(err)
		}
		j.SetFlushEvery(2) // exercise fsync batching
		ctx, cancel := context.WithCancel(context.Background())
		sink := &interruptingSink{Journal: j, after: k, cancel: cancel}
		stats := telemetry.NewCampaignStats("resnet", cfg.Experiments, 2)
		j.SetStats(stats)
		_, runErr := experiment.Resume(cfg, experiment.RunOptions{
			Context: ctx, Golden: g, Sink: sink, Stats: stats,
		})
		cancel()
		if runErr != nil && !errors.Is(runErr, context.Canceled) {
			t.Fatalf("K=%d: interrupted run: %v", k, runErr)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if snap := stats.Snapshot(); snap.JournalAppends == 0 || snap.JournalFlushes == 0 {
			t.Fatalf("K=%d: telemetry missed journal activity: %+v", k, snap)
		}

		j2, prior, err := OpenJournal(path, cfg, digest)
		if err != nil {
			t.Fatalf("K=%d: OpenJournal: %v", k, err)
		}
		if len(prior) < k {
			t.Fatalf("K=%d: journal replayed %d records, want >= %d", k, len(prior), k)
		}
		resumed, err := experiment.Resume(cfg, experiment.RunOptions{
			Golden: g, Prior: prior, Sink: j2,
		})
		if err != nil {
			t.Fatalf("K=%d: resume: %v", k, err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		if len(resumed.Records) != len(want.Records) {
			t.Fatalf("K=%d: %d records, want %d", k, len(resumed.Records), len(want.Records))
		}
		for i := range want.Records {
			if !journalRecordsEqual(&want.Records[i], &resumed.Records[i]) {
				t.Fatalf("K=%d: record %d differs after journal round trip:\nwant %+v\ngot  %+v",
					k, i, want.Records[i], resumed.Records[i])
			}
		}
		if want.Tally != resumed.Tally {
			t.Fatalf("K=%d: tally differs: want %+v got %+v", k, want.Tally, resumed.Tally)
		}

		// The finished journal now covers the whole campaign: a further
		// resume replays everything and runs nothing.
		_, full, err := OpenJournal(path, cfg, digest)
		if err != nil {
			t.Fatalf("K=%d: reopening finished journal: %v", k, err)
		}
		if len(full) != cfg.Experiments {
			t.Fatalf("K=%d: finished journal holds %d records, want %d", k, len(full), cfg.Experiments)
		}
	}
}

// TestJournalBytesSchedulingInvariant is the on-disk half of the
// scheduling exactness proof: the journal file a campaign writes must be
// byte-for-byte identical across snapshot-affine and index-order dispatch
// and across worker counts. The header binds no execution knobs and the
// campaign releases appends through a canonical sequence, so any byte
// difference here is a determinism regression.
func TestJournalBytesSchedulingInvariant(t *testing.T) {
	cfg := journalTestConfig(t)
	g := experiment.PrepareGolden(cfg)
	digest := g.Ref().Digest()

	writeJournal := func(noAffine bool, workers int) []byte {
		t.Helper()
		c := cfg
		c.NoAffine = noAffine
		c.Workers = workers
		path := filepath.Join(t.TempDir(), "run.jsonl")
		j, err := CreateJournal(path, c, digest)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := experiment.Resume(c, experiment.RunOptions{Golden: g, Sink: j}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	want := writeJournal(true, 1) // index-order, single worker: the canonical order
	for _, v := range []struct {
		noAffine bool
		workers  int
	}{{false, 1}, {false, 2}, {false, 3}, {true, 2}} {
		got := writeJournal(v.noAffine, v.workers)
		if !bytes.Equal(got, want) {
			t.Fatalf("journal bytes differ for noAffine=%v workers=%d (%d vs %d bytes)",
				v.noAffine, v.workers, len(got), len(want))
		}
	}
}

// completeJournal builds one finished journaled campaign and returns the
// journal path plus the matching (cfg, digest).
func completeJournal(t *testing.T) (string, experiment.Config, string) {
	t.Helper()
	cfg := journalTestConfig(t)
	g := experiment.PrepareGolden(cfg)
	digest := g.Ref().Digest()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path, cfg, digest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := experiment.Resume(cfg, experiment.RunOptions{Golden: g, Sink: j}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, cfg, digest
}

// mutateJournal copies the journal through fn into a fresh file.
func mutateJournal(t *testing.T, path string, fn func([]byte) []byte) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "mutated.jsonl")
	if err := os.WriteFile(out, fn(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJournalCorruption: every way a journal can lie about itself must
// fail loudly with an actionable error — never resume silently.
func TestJournalCorruption(t *testing.T) {
	path, cfg, digest := completeJournal(t)

	t.Run("truncated last line is a repairable torn tail", func(t *testing.T) {
		torn := mutateJournal(t, path, func(raw []byte) []byte {
			return raw[:len(raw)-7] // chop mid-record, past the last newline
		})
		_, _, err := OpenJournal(torn, cfg, digest)
		if !IsTornTail(err) {
			t.Fatalf("want TornTailError, got %v", err)
		}
		if !strings.Contains(err.Error(), "repair") {
			t.Fatalf("torn-tail error is not actionable: %v", err)
		}
		removed, err := RepairJournal(torn)
		if err != nil || removed == 0 {
			t.Fatalf("RepairJournal removed %d bytes, err %v", removed, err)
		}
		_, prior, err := OpenJournal(torn, cfg, digest)
		if err != nil {
			t.Fatalf("repaired journal still unreadable: %v", err)
		}
		if len(prior) != cfg.Experiments-1 {
			t.Fatalf("repaired journal holds %d records, want %d", len(prior), cfg.Experiments-1)
		}
		// Repair on a healthy journal is a no-op.
		if n, err := RepairJournal(path); n != 0 || err != nil {
			t.Fatalf("RepairJournal on healthy journal: removed %d, err %v", n, err)
		}
	})

	t.Run("seed mismatch", func(t *testing.T) {
		other := cfg
		other.Seed++
		_, _, err := OpenJournal(path, other, digest)
		if err == nil || !strings.Contains(err.Error(), "seed") {
			t.Fatalf("want seed-mismatch error, got %v", err)
		}
	})

	t.Run("config fingerprint mismatch", func(t *testing.T) {
		other := cfg
		other.HorizonMult = 3
		_, _, err := OpenJournal(path, other, digest)
		if err == nil || !strings.Contains(err.Error(), "fingerprint") {
			t.Fatalf("want fingerprint-mismatch error, got %v", err)
		}
	})

	t.Run("journal from a different binary", func(t *testing.T) {
		_, _, err := OpenJournal(path, cfg, "0123456789abcdef")
		if err == nil || !strings.Contains(err.Error(), "different binary") {
			t.Fatalf("want different-binary error, got %v", err)
		}
	})

	t.Run("future container version", func(t *testing.T) {
		bumped := mutateJournal(t, path, func(raw []byte) []byte {
			lines := strings.SplitN(string(raw), "\n", 2)
			var hdr map[string]any
			if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
				t.Fatal(err)
			}
			hdr["version"] = journalVersion + 1
			out, err := json.Marshal(hdr)
			if err != nil {
				t.Fatal(err)
			}
			return []byte(string(out) + "\n" + lines[1])
		})
		_, _, err := OpenJournal(bumped, cfg, digest)
		if err == nil || !strings.Contains(err.Error(), "incompatible") {
			t.Fatalf("want version-mismatch error, got %v", err)
		}
	})

	t.Run("corrupt interior line", func(t *testing.T) {
		corrupt := mutateJournal(t, path, func(raw []byte) []byte {
			lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
			lines[1] = `{"i":0,"record":` // valid newline, garbage JSON
			return []byte(strings.Join(lines, "\n") + "\n")
		})
		_, _, err := OpenJournal(corrupt, cfg, digest)
		if err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("want corruption error, got %v", err)
		}
	})

	t.Run("duplicate record index", func(t *testing.T) {
		dup := mutateJournal(t, path, func(raw []byte) []byte {
			lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
			return []byte(strings.Join(append(lines, lines[1]), "\n") + "\n")
		})
		_, _, err := OpenJournal(dup, cfg, digest)
		if err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("want duplicate error, got %v", err)
		}
	})

	t.Run("record index out of range", func(t *testing.T) {
		narrower := cfg
		narrower.Experiments = 1
		// Different Experiments also changes the header; craft a journal
		// whose header says 1 experiment but which carries index 3.
		forged := mutateJournal(t, path, func(raw []byte) []byte {
			lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
			var hdr map[string]any
			if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
				t.Fatal(err)
			}
			hdr["experiments"] = 1
			hdr["config_hash"] = narrower.Fingerprint()
			out, err := json.Marshal(hdr)
			if err != nil {
				t.Fatal(err)
			}
			keep := []string{string(out)}
			for _, l := range lines[1:] {
				if strings.Contains(l, `"i":3`) {
					keep = append(keep, l)
				}
			}
			return []byte(strings.Join(keep, "\n") + "\n")
		})
		_, _, err := OpenJournal(forged, narrower, digest)
		if err == nil || !strings.Contains(err.Error(), "outside campaign range") {
			t.Fatalf("want out-of-range error, got %v", err)
		}
	})

	t.Run("empty journal", func(t *testing.T) {
		empty := filepath.Join(t.TempDir(), "empty.jsonl")
		if err := os.WriteFile(empty, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := OpenJournal(empty, cfg, digest)
		if err == nil || !strings.Contains(err.Error(), "empty") {
			t.Fatalf("want empty-journal error, got %v", err)
		}
	})

	t.Run("create refuses to clobber", func(t *testing.T) {
		if _, err := CreateJournal(path, cfg, digest); err == nil {
			t.Fatal("CreateJournal overwrote an existing journal")
		}
	})
}

// TestJournalRejectsOldRecordSchemas: journals written by previous releases
// carry record lines missing fields the current schema always encodes with
// -1 sentinels (quarantine_iter in v2, time_to_recover_iters in v4's view
// of v3), so decoding them would silently turn "never happened" into 0 and
// break the byte-identical resume contract. The schema gate must reject
// each old version loudly, by name, with an actionable message — and the
// v3 rejection must name the recovery fields that motivated the bump.
func TestJournalRejectsOldRecordSchemas(t *testing.T) {
	path, cfg, digest := completeJournal(t)
	for _, old := range []string{"campaign-record-v2", "campaign-record-v3"} {
		forged := mutateJournal(t, path, func(raw []byte) []byte {
			lines := strings.SplitN(string(raw), "\n", 2)
			var hdr map[string]any
			if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
				t.Fatal(err)
			}
			hdr["record_schema"] = old
			out, err := json.Marshal(hdr)
			if err != nil {
				t.Fatal(err)
			}
			return []byte(string(out) + "\n" + lines[1])
		})
		_, _, err := OpenJournal(forged, cfg, digest)
		if err == nil || !strings.Contains(err.Error(), old) {
			t.Fatalf("%s journal not rejected by name: %v", old, err)
		}
		if !strings.Contains(err.Error(), "re-run the campaign from scratch") {
			t.Fatalf("%s rejection is not actionable: %v", old, err)
		}
		if old == "campaign-record-v3" && !strings.Contains(err.Error(), "time_to_recover_iters") {
			t.Fatalf("v3 rejection does not explain the recovery-field hazard: %v", err)
		}
	}
}

// TestCampaignRecordRoundTrip: the wire encoding must round-trip records
// bit for bit, including the uint64 RNG seeds and float extremes.
func TestCampaignRecordRoundTrip(t *testing.T) {
	path, cfg, digest := completeJournal(t)
	_, prior, err := OpenJournal(path, cfg, digest)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range prior {
		enc := EncodeCampaignRecord(&rec)
		back, err := DecodeCampaignRecord(enc)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !journalRecordsEqual(&rec, &back) {
			t.Fatalf("record %d does not round-trip:\nin  %+v\nout %+v", i, rec, back)
		}
	}
}

// TestNonFiniteRecordRoundTrip: a fault that blows up the gradient history
// or moving variance leaves ±Inf/NaN in a record — values encoding/json
// rejects. The journal must still persist and replay such records exactly
// (they marshal as "+Inf"/"-Inf"/"NaN" markers via record.Float).
func TestNonFiniteRecordRoundTrip(t *testing.T) {
	path, cfg, digest := completeJournal(t)
	_, prior, err := OpenJournal(path, cfg, digest)
	if err != nil {
		t.Fatal(err)
	}
	var rec experiment.Record
	for _, r := range prior {
		rec = r
		break
	}
	rec.HistAtT = math.Inf(1)
	rec.HistAtT1 = math.Inf(-1)
	rec.MvarAtT = math.NaN()
	rec.FinalTestAcc = math.Inf(1)

	line, err := json.Marshal(journalLine{Index: 0, Record: EncodeCampaignRecord(&rec)})
	if err != nil {
		t.Fatalf("encoding a non-finite record must not fail: %v", err)
	}
	var back journalLine
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCampaignRecord(back.Record)
	if err != nil {
		t.Fatal(err)
	}
	if !journalRecordsEqual(&rec, &got) {
		t.Fatalf("non-finite record does not round-trip:\nin  %+v\nout %+v", rec, got)
	}
}
