package record

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/rng"
)

// TestJournalRejectsDeviceFaultConfigMismatch: a journal written by one
// campaign flavor must fail loudly when resumed against the other — an FF
// journal against a device-fault config, a device-fault journal against an
// FF config, and a device-fault journal against different mitigation
// settings. Silently adopting such records would mix two different fault
// populations into one statistics table.
func TestJournalRejectsDeviceFaultConfigMismatch(t *testing.T) {
	ffCfg := journalTestConfig(t)
	dfCfg := ffCfg
	dfCfg.DeviceFaults = true
	dfCfg.Quarantine = true

	ffPath := filepath.Join(t.TempDir(), "ff.jsonl")
	j, err := CreateJournal(ffPath, ffCfg, "digest")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(ffPath, dfCfg, "digest"); err == nil ||
		!strings.Contains(err.Error(), "device-fault") {
		t.Fatalf("FF journal resumed under a device-fault config: %v", err)
	}

	dfPath := filepath.Join(t.TempDir(), "df.jsonl")
	j, err = CreateJournal(dfPath, dfCfg, "digest")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dfPath, ffCfg, "digest"); err == nil ||
		!strings.Contains(err.Error(), "device-fault") {
		t.Fatalf("device-fault journal resumed under an FF config: %v", err)
	}

	degCfg := dfCfg
	degCfg.Degraded = true
	if _, _, err := OpenJournal(dfPath, degCfg, "digest"); err == nil ||
		!strings.Contains(err.Error(), "device-fault") {
		t.Fatalf("device-fault journal resumed under different mitigation settings: %v", err)
	}
}

// TestDeviceFaultRecordRoundTrip: the v2 wire form must round-trip the
// device-fault fields bit for bit, including the uint64 corruption seeds
// and the -1 sentinel of QuarantineIter.
func TestDeviceFaultRecordRoundTrip(t *testing.T) {
	recs := []experiment.Record{
		{
			DeviceFault: fault.DeviceFault{
				Kind: fault.DeviceLinkSDC, Device: 5, Iteration: 9, BitPos: 30,
				Lane: 7, Flips: 3, DelayTicks: 120, RepairIter: 14,
				Seed: rng.Seed{State: math.MaxUint64, Stream: math.MaxUint64 >> 1},
			},
			NonFiniteIter: -1, DetectIter: 9, QuarantineIter: 9,
			Quarantines: 2, Rejoins: 1, DegradedIters: 17, CommRetries: 4,
			InjectedElems: 33,
		},
		// An FF record must stay device-fault-free (nil wire pointer) and
		// keep its QuarantineIter sentinel.
		{NonFiniteIter: -1, DetectIter: -1, QuarantineIter: -1, Masked: true},
	}
	for i := range recs {
		enc := EncodeCampaignRecord(&recs[i])
		if recs[i].DeviceFault.Kind == fault.DeviceFaultNone && enc.DeviceFault != nil {
			t.Fatalf("record %d: FF record encoded a device-fault object", i)
		}
		back, err := DecodeCampaignRecord(enc)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !journalRecordsEqual(&recs[i], &back) {
			t.Fatalf("record %d does not round-trip:\nin  %+v\nout %+v", i, recs[i], back)
		}
	}
	if _, err := DecodeDeviceFault(DeviceFaultJSON{Kind: "bogus"}); err == nil {
		t.Fatal("unknown device-fault kind decoded without error")
	}
}

// TestDeviceFaultJournalResume: end-to-end crash-safety through the real
// journal for the device-fault flavor — journal a mitigated campaign,
// reopen it with only a prefix of the records, resume, and require
// byte-identical records versus the uninterrupted run.
func TestDeviceFaultJournalResume(t *testing.T) {
	cfg := journalTestConfig(t)
	cfg.DeviceFaults = true
	cfg.Quarantine = true
	g := experiment.PrepareGolden(cfg)
	digest := g.Ref().Digest()
	want := experiment.RunWithGolden(cfg, g)

	path := filepath.Join(t.TempDir(), "df.jsonl")
	j, err := CreateJournal(path, cfg, digest)
	if err != nil {
		t.Fatal(err)
	}
	// Journal only the first 2 records, as if the campaign died there.
	for i := 0; i < 2; i++ {
		if err := j.Append(i, want.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, prior, err := OpenJournal(path, cfg, digest)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 2 {
		t.Fatalf("replayed %d records, want 2", len(prior))
	}
	resumed, err := experiment.Resume(cfg, experiment.RunOptions{Golden: g, Prior: prior, Sink: j2})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range want.Records {
		if !journalRecordsEqual(&want.Records[i], &resumed.Records[i]) {
			t.Fatalf("resumed record %d differs:\nwant %+v\ngot  %+v",
				i, want.Records[i], resumed.Records[i])
		}
	}
}
