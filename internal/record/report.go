package record

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/outcome"
	"repro/internal/stats"
)

// ReadCampaignJSON parses a campaign summary written by WriteCampaignJSON.
// The returned value is the wire structure (the live Campaign cannot be
// reconstructed without re-running — traces are not archived), which is
// what report rendering consumes.
func ReadCampaignJSON(r io.Reader) (*CampaignJSON, error) {
	var j CampaignJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("record: parsing campaign: %w", err)
	}
	return &j, nil
}

// RenderMarkdown writes a human-readable Markdown report of an archived
// campaign: the outcome breakdown with confidence intervals, detection
// statistics, and condition-value extremes. It operates on the wire form so
// reports can be produced long after the campaign ran.
func RenderMarkdown(w io.Writer, c *CampaignJSON) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Fault-injection campaign: %s\n\n", c.Workload)
	fmt.Fprintf(bw, "- experiments: %d (seed %d)\n", c.Experiments, c.Seed)
	fmt.Fprintf(bw, "- fault-free reference accuracy: %.3f\n\n", c.RefAcc)

	// Outcome breakdown.
	counts := map[string]int{}
	for _, r := range c.Records {
		counts[r.Outcome]++
	}
	var names []string
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(bw, "## Outcomes")
	fmt.Fprintln(bw, "")
	fmt.Fprintln(bw, "| outcome | count | share | 99% CI |")
	fmt.Fprintln(bw, "|---|---|---|---|")
	for _, name := range names {
		p := stats.WilsonInterval(counts[name], len(c.Records), 0.99)
		fmt.Fprintf(bw, "| %s | %d | %.1f%% | %.1f%%–%.1f%% |\n",
			name, counts[name], 100*p.P, 100*p.Lo, 100*p.Hi)
	}

	// Detection statistics.
	var detected, latent int
	maxLat := 0
	for _, r := range c.Records {
		o := outcomeByName(r.Outcome)
		if o != nil && (o.IsLatent() || *o == outcome.ShortTermINFNaN) {
			latent++
			if r.DetectIter >= 0 {
				detected++
				fi := r.Injection.Iteration
				if r.DeviceFault != nil {
					fi = r.DeviceFault.Iteration
				}
				if l := r.DetectIter - fi; l > maxLat {
					maxLat = l
				}
			}
		}
	}
	fmt.Fprintln(bw, "\n## Detection")
	if latent > 0 {
		fmt.Fprintf(bw, "\nbounds checks flagged %d/%d latent or short-term outcomes; max latency %d iterations.\n",
			detected, latent, maxLat)
	} else {
		fmt.Fprintln(bw, "\nno latent outcomes in this campaign.")
	}

	// Condition extremes.
	var hist, mvar stats.Range
	for _, r := range c.Records {
		o := outcomeByName(r.Outcome)
		if o == nil || (!o.IsLatent() && *o != outcome.ShortTermINFNaN) {
			continue
		}
		if v := maxf(float64(r.HistAtT), float64(r.HistAtT1)); v > 0 {
			hist.Observe(v)
		}
		if v := maxf(float64(r.MvarAtT), float64(r.MvarAtT1)); v > 0 {
			mvar.Observe(v)
		}
	}
	fmt.Fprintln(bw, "\n## Necessary-condition values (within 2 iterations of the fault)")
	fmt.Fprintf(bw, "\n- |gradient history|: %s\n- |moving variance|: %s\n", hist.String(), mvar.String())

	// FF-kind contribution.
	kindUnexpected := map[string]int{}
	for _, r := range c.Records {
		if o := outcomeByName(r.Outcome); o != nil && o.IsUnexpected() {
			kindUnexpected[r.Injection.Kind]++
		}
	}
	if len(kindUnexpected) > 0 {
		fmt.Fprintln(bw, "\n## Unexpected outcomes by FF class")
		fmt.Fprintln(bw, "")
		var kinds []string
		for k := range kindUnexpected {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(bw, "- %s: %d\n", k, kindUnexpected[k])
		}
	}
	return bw.Flush()
}

// outcomeByName resolves a serialized outcome name; nil if unknown.
func outcomeByName(name string) *outcome.Outcome {
	for _, o := range outcome.All() {
		if o.String() == name {
			o := o
			return &o
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
