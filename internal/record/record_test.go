package record

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/train"
	"repro/internal/workloads"
)

func sampleInjection() fault.Injection {
	return fault.Injection{
		Kind: accel.GlobalG3, LayerIdx: 2, Pass: fault.BackwardInput,
		Iteration: 40, CycleFrac: 0.25, N: 3, Unit: 7, DeltaFrac: 0.6,
		BitPos: 29, Seed: rng.Seed{State: 123, Stream: 456},
	}
}

func TestInjectionJSONRoundTrip(t *testing.T) {
	orig := sampleInjection()
	var buf bytes.Buffer
	if err := WriteInjectionJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInjectionJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip changed injection:\n  orig %+v\n  got  %+v", orig, got)
	}
}

func TestInjectionJSONAllKindsAndPasses(t *testing.T) {
	for _, k := range accel.Kinds() {
		for _, p := range []fault.Pass{fault.Forward, fault.BackwardInput, fault.BackwardWeight} {
			inj := sampleInjection()
			inj.Kind, inj.Pass = k, p
			var buf bytes.Buffer
			if err := WriteInjectionJSON(&buf, inj); err != nil {
				t.Fatal(err)
			}
			got, err := ReadInjectionJSON(&buf)
			if err != nil {
				t.Fatalf("kind %v pass %v: %v", k, p, err)
			}
			if got.Kind != k || got.Pass != p {
				t.Fatalf("kind %v pass %v mangled to %v %v", k, p, got.Kind, got.Pass)
			}
		}
	}
}

func TestInjectionJSONRejectsBadNames(t *testing.T) {
	if _, err := ReadInjectionJSON(strings.NewReader(`{"kind":"bogus","pass":"forward"}`)); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if _, err := ReadInjectionJSON(strings.NewReader(`{"kind":"g1","pass":"sideways"}`)); err == nil {
		t.Fatal("bogus pass accepted")
	}
	if _, err := ReadInjectionJSON(strings.NewReader(`{nonsense`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func sampleTrace() *train.Trace {
	tr := train.NewTrace("resnet")
	tr.FaultIter = 3
	tr.TrainLoss = []float64{1.5, 1.2, 0.9, 2.0, 1.8}
	tr.TrainAcc = []float64{0.25, 0.4, 0.6, 0.3, 0.35}
	tr.TestIters = []int{4}
	tr.TestLoss = []float64{1.1}
	tr.TestAcc = []float64{0.5}
	tr.NonFiniteIter = 4
	tr.NonFiniteAt = "loss@device0"
	tr.Completed = 5
	return tr
}

func tracesEqual(a, b *train.Trace) bool {
	if a.Workload != b.Workload || a.FaultIter != b.FaultIter ||
		a.NonFiniteIter != b.NonFiniteIter || a.Completed != b.Completed {
		return false
	}
	if len(a.TrainLoss) != len(b.TrainLoss) || len(a.TestIters) != len(b.TestIters) {
		return false
	}
	for i := range a.TrainLoss {
		if a.TrainLoss[i] != b.TrainLoss[i] || a.TrainAcc[i] != b.TrainAcc[i] {
			return false
		}
	}
	for i := range a.TestIters {
		if a.TestIters[i] != b.TestIters[i] || a.TestAcc[i] != b.TestAcc[i] || a.TestLoss[i] != b.TestLoss[i] {
			return false
		}
	}
	return true
}

func TestTraceJSONRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(orig, got) {
		t.Fatalf("JSON round trip changed trace")
	}
	if got.NonFiniteAt != "loss@device0" {
		t.Fatalf("NonFiniteAt = %q", got.NonFiniteAt)
	}
}

func TestTraceTextRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTraceText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceText(&buf)
	if err != nil {
		t.Fatalf("parsing:\n%s\n%v", buf.String(), err)
	}
	if !tracesEqual(orig, got) {
		t.Fatalf("text round trip changed trace:\n%s", buf.String())
	}
}

func TestTraceTextFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceText(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# workload resnet fault_iter 3", "iter 0 loss 1.5 acc 0.25", "test 4 loss 1.1 acc 0.5", "nan 4 loss@device0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"bogus line here",
		"iter 0 loss x acc 0.5",
		"test 1 loss 0.5",
		"nan",
	} {
		if _, err := ReadTraceText(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted garbage %q", bad)
		}
	}
}

func TestTraceTextSkipsBlankLines(t *testing.T) {
	in := "# workload x fault_iter -1\n\niter 0 loss 1 acc 0.5\n\n"
	tr, err := ReadTraceText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Completed != 1 || tr.Workload != "x" {
		t.Fatalf("parsed %+v", tr)
	}
}

func miniCampaign(t *testing.T) *experiment.Campaign {
	t.Helper()
	w, err := workloads.ByName("yolo")
	if err != nil {
		t.Fatal(err)
	}
	w.Iters = 20
	return experiment.Run(experiment.Config{Workload: w, Experiments: 4, Seed: 3, HorizonMult: 1})
}

func TestCampaignJSON(t *testing.T) {
	c := miniCampaign(t)
	var buf bytes.Buffer
	if err := WriteCampaignJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"workload": "yolo"`, `"records"`, `"outcome"`} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign JSON missing %q", want)
		}
	}
}

func TestCampaignCSV(t *testing.T) {
	c := miniCampaign(t)
	var buf bytes.Buffer
	if err := WriteCampaignCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 records
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "kind,layer,pass,") {
		t.Fatalf("bad header %q", lines[0])
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n != strings.Count(lines[0], ",") {
			t.Fatalf("row has %d commas, header has %d: %q", n, strings.Count(lines[0], ","), line)
		}
	}
}

func TestKindPassNameResolvers(t *testing.T) {
	for _, k := range accel.Kinds() {
		name := kindToName[k]
		got, err := KindFromName(name)
		if err != nil || got != k {
			t.Fatalf("KindFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := KindFromName("zzz"); err == nil {
		t.Fatal("bad kind name accepted")
	}
	if _, err := PassFromName("zzz"); err == nil {
		t.Fatal("bad pass name accepted")
	}
}

func TestCampaignJSONRoundTripAndMarkdown(t *testing.T) {
	c := miniCampaign(t)
	var buf bytes.Buffer
	if err := WriteCampaignJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCampaignJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Workload != "yolo" || len(loaded.Records) != 4 {
		t.Fatalf("loaded %s with %d records", loaded.Workload, len(loaded.Records))
	}
	var md bytes.Buffer
	if err := RenderMarkdown(&md, loaded); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"# Fault-injection campaign: yolo", "## Outcomes", "| outcome |", "## Detection", "Necessary-condition"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestReadCampaignJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadCampaignJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestOutcomeByName(t *testing.T) {
	if o := outcomeByName("SlowDegrade"); o == nil {
		t.Fatal("SlowDegrade not resolved")
	}
	if o := outcomeByName("Nonsense"); o != nil {
		t.Fatal("bogus outcome resolved")
	}
}
