package record

// Per-shard journals and the deterministic merge of a distributed campaign
// (internal/dist).
//
// A distributed campaign partitions its experiment index space into
// contiguous owner ranges ("shards"); each worker runs one shard through
// experiment.Resume with RunOptions.Shard and produces the canonical
// journal lines for exactly its owners and their dedup adoptees, in the
// same relative order a monolithic run would have appended them. The
// coordinator persists each completed shard as a shard journal — a normal
// journal whose header additionally binds the owner range — and, once all
// shards are in, merges them by concatenating their record lines in shard
// order beneath a monolithic header. Because owners ascend within shards
// exactly as they do monolithically, the merged file is byte-identical to
// the journal a single-process run writes (TestMergeShardJournals, and the
// end-to-end proof in internal/dist under -race).

import (
	"bufio"
	"fmt"
	"os"
	"sync"

	"repro/internal/experiment"
)

// ShardBinding renders a shard's owner-index range [lo, hi) as the stable
// string bound into shard journal headers.
func ShardBinding(lo, hi int) string { return fmt.Sprintf("%d-%d", lo, hi) }

// LineBuffer is an in-memory experiment.Sink that encodes each appended
// record into the exact line bytes Journal.Append would have written
// (EncodeJournalLine). Distributed workers run their shard into one and
// ship Lines() to the coordinator; the bytes survive the trip verbatim, so
// the merged journal needs no re-encoding to stay byte-identical.
type LineBuffer struct {
	mu    sync.Mutex
	lines []string
}

// Append implements experiment.Sink.
func (b *LineBuffer) Append(idx int, rec experiment.Record) error {
	line, err := EncodeJournalLine(idx, rec)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, string(line))
	return nil
}

// Flush implements experiment.Sink (memory needs no flushing).
func (b *LineBuffer) Flush() error { return nil }

// Lines returns the appended lines in append order (the shard's canonical
// sequence, since the campaign runner orders appends before the sink).
func (b *LineBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.lines...)
}

var _ experiment.Sink = (*LineBuffer)(nil)

// validateShardRange bounds-checks an owner range against the campaign.
func validateShardRange(cfg experiment.Config, lo, hi int) error {
	if lo < 0 || hi > cfg.Experiments || lo >= hi {
		return fmt.Errorf("record: shard [%d,%d) is not a non-empty subrange of campaign index space [0,%d)", lo, hi, cfg.Experiments)
	}
	return nil
}

// WriteShardJournal persists one completed shard of a distributed campaign:
// a journal whose header binds, on top of the usual campaign identity
// (config fingerprint, seed, golden digest, efficiency flags), the shard's
// owner range [lo, hi). lines are the shard's canonical record lines
// (LineBuffer.Lines); each must decode and carry an in-range index, so a
// corrupted upload is rejected before it ever reaches a file. The file is
// written whole and fsynced; an existing file is an error (a shard is
// ingested exactly once per epoch — the coordinator removes a stale file
// before re-ingesting a reassigned shard).
func WriteShardJournal(path string, cfg experiment.Config, goldenDigest string, lo, hi int, lines []string) error {
	if err := validateShardRange(cfg, lo, hi); err != nil {
		return err
	}
	if _, err := DecodeJournalLines(lines, cfg.Experiments); err != nil {
		return fmt.Errorf("record: shard [%d,%d) upload invalid: %w", lo, hi, err)
	}
	hdr := headerFor(cfg, goldenDigest)
	hdr.Shard = ShardBinding(lo, hi)
	return writeWholeJournal(path, hdr, lines)
}

// ShardLines opens and validates the shard journal at path — the header
// must match the campaign and the exact owner range — and returns its raw
// record lines in file order plus the decoded records by index.
func ShardLines(path string, cfg experiment.Config, goldenDigest string, lo, hi int) ([]string, map[int]experiment.Record, error) {
	if err := validateShardRange(cfg, lo, hi); err != nil {
		return nil, nil, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("record: opening shard journal: %w", err)
	}
	want := headerFor(cfg, goldenDigest)
	want.Shard = ShardBinding(lo, hi)
	lines, err := journalRecordLines(path, raw, want)
	if err != nil {
		return nil, nil, err
	}
	done, err := decodeRecordLines(path, lines, cfg.Experiments)
	if err != nil {
		return nil, nil, err
	}
	return lines, done, nil
}

// ShardFile names one shard journal of a campaign for merging.
type ShardFile struct {
	Path   string
	Lo, Hi int
}

// MergeShardJournals merges a complete distributed campaign's shard
// journals into one monolithic journal at dst. The shards must partition
// the campaign index space exactly — sorted, gap-free, starting at 0 and
// ending at cfg.Experiments — and together contribute every record exactly
// once; any hole, overlap, duplicate, or header mismatch fails loudly
// before dst is created. Record lines are concatenated verbatim in shard
// order beneath a monolithic header, which — because every shard emitted
// the monolithic canonical sequence restricted to its owners — makes dst
// byte-identical to the journal an uninterrupted single-process run of the
// same campaign writes. dst must not already exist.
func MergeShardJournals(dst string, cfg experiment.Config, goldenDigest string, shards []ShardFile) error {
	if len(shards) == 0 {
		return fmt.Errorf("record: merging zero shards")
	}
	var all []string
	seen := make(map[int]experiment.Record, cfg.Experiments)
	next := 0
	for _, s := range shards {
		if s.Lo != next {
			return fmt.Errorf("record: shard journals do not partition the campaign: expected a shard starting at %d, got [%d,%d) — shards must be sorted, contiguous, and gap-free", next, s.Lo, s.Hi)
		}
		lines, done, err := ShardLines(s.Path, cfg, goldenDigest, s.Lo, s.Hi)
		if err != nil {
			return err
		}
		for i := range done {
			if _, dup := seen[i]; dup {
				return fmt.Errorf("record: record %d appears in more than one shard journal — the shards overlap or a shard was ingested twice", i)
			}
			seen[i] = done[i]
		}
		all = append(all, lines...)
		next = s.Hi
	}
	if next != cfg.Experiments {
		return fmt.Errorf("record: shard journals cover owner range [0,%d) but the campaign has %d experiments — a shard is missing", next, cfg.Experiments)
	}
	if len(seen) != cfg.Experiments {
		return fmt.Errorf("record: merged shards hold %d records, campaign has %d — a shard journal is incomplete", len(seen), cfg.Experiments)
	}
	return writeWholeJournal(dst, headerFor(cfg, goldenDigest), all)
}

// writeWholeJournal writes a complete journal (header + record lines) to a
// fresh file and fsyncs it. Refuses to overwrite.
func writeWholeJournal(path string, hdr journalHeader, lines []string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("record: creating journal: %w", err)
	}
	j := &Journal{f: f, bw: bufio.NewWriter(f), path: path, flushEvery: defaultFlushEvery}
	if err := j.writeHeader(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	for _, line := range lines {
		j.bw.WriteString(line)
		if err := j.bw.WriteByte('\n'); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("record: writing journal %s: %w", path, err)
		}
	}
	if err := j.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}
