package record

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/workloads"
)

func shardTestConfig(t *testing.T) experiment.Config {
	t.Helper()
	w, err := workloads.ByName("resnet")
	if err != nil {
		t.Fatal(err)
	}
	w.Iters = 12 // shrink for test speed
	return experiment.Config{Workload: w, Experiments: 8, Seed: 11, HorizonMult: 2, InjectFrac: 0.8, Workers: 2}
}

// runShards executes the campaign as the given owner-range shards and
// writes one shard journal per range under dir, returning the ShardFiles.
func runShards(t *testing.T, cfg experiment.Config, g *experiment.Golden, dir string, bounds [][2]int) []ShardFile {
	t.Helper()
	digest := g.Ref().Digest()
	var files []ShardFile
	for _, b := range bounds {
		buf := &LineBuffer{}
		sh := experiment.Shard{Lo: b[0], Hi: b[1]}
		if _, err := experiment.Resume(cfg, experiment.RunOptions{Golden: g, Sink: buf, Shard: &sh}); err != nil {
			t.Fatalf("shard [%d,%d) failed: %v", b[0], b[1], err)
		}
		path := filepath.Join(dir, ShardBinding(b[0], b[1])+".jsonl")
		if err := WriteShardJournal(path, cfg, digest, b[0], b[1], buf.Lines()); err != nil {
			t.Fatalf("writing shard journal [%d,%d): %v", b[0], b[1], err)
		}
		files = append(files, ShardFile{Path: path, Lo: b[0], Hi: b[1]})
	}
	return files
}

// TestMergeShardJournals is the merge half of the distributed exactness
// proof at the file level: shard journals merged in shard order must be
// byte-identical to the journal a monolithic run writes — with and without
// the dedup/early-exit fast paths (whose owner/adoptee order crosses index
// order within a shard).
func TestMergeShardJournals(t *testing.T) {
	for _, tc := range []struct {
		name             string
		dedup, earlyExit bool
	}{
		{"plain", false, false},
		{"dedup-early-exit", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := shardTestConfig(t)
			cfg.Dedup, cfg.EarlyExit = tc.dedup, tc.earlyExit
			g := experiment.PrepareGolden(cfg)
			digest := g.Ref().Digest()

			monoPath := filepath.Join(dir, "mono.jsonl")
			j, err := CreateJournal(monoPath, cfg, digest)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := experiment.Resume(cfg, experiment.RunOptions{Golden: g, Sink: j}); err != nil {
				t.Fatalf("monolithic run failed: %v", err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			files := runShards(t, cfg, g, dir, [][2]int{{0, 3}, {3, 5}, {5, 8}})
			mergedPath := filepath.Join(dir, "merged.jsonl")
			if err := MergeShardJournals(mergedPath, cfg, digest, files); err != nil {
				t.Fatalf("merge failed: %v", err)
			}

			mono, err := os.ReadFile(monoPath)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := os.ReadFile(mergedPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mono, merged) {
				t.Fatalf("merged journal differs from monolithic journal:\nmono:   %d bytes\nmerged: %d bytes", len(mono), len(merged))
			}
		})
	}
}

// TestShardJournalHeaderBinding: a shard journal must only open under its
// exact owner range and must be rejected as a whole-campaign journal.
func TestShardJournalHeaderBinding(t *testing.T) {
	dir := t.TempDir()
	cfg := shardTestConfig(t)
	g := experiment.PrepareGolden(cfg)
	digest := g.Ref().Digest()
	files := runShards(t, cfg, g, dir, [][2]int{{0, 8}})
	path := files[0].Path

	if _, _, err := ShardLines(path, cfg, digest, 0, 8); err != nil {
		t.Fatalf("reading back the shard journal failed: %v", err)
	}
	if _, _, err := ShardLines(path, cfg, digest, 0, 4); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("ShardLines accepted the wrong owner range (err=%v)", err)
	}
	if _, _, err := OpenJournal(path, cfg, digest); err == nil || !strings.Contains(err.Error(), "per-shard") {
		t.Fatalf("OpenJournal accepted a per-shard journal as a whole-campaign journal (err=%v)", err)
	}
	other := cfg
	other.Seed++
	if _, _, err := ShardLines(path, other, digest, 0, 8); err == nil {
		t.Fatal("ShardLines accepted a shard journal from a different campaign")
	}
}

// TestMergeShardJournalsValidation: gaps, overlaps, short coverage, and
// invalid uploads must all fail loudly before a merged file appears.
func TestMergeShardJournalsValidation(t *testing.T) {
	dir := t.TempDir()
	cfg := shardTestConfig(t)
	g := experiment.PrepareGolden(cfg)
	digest := g.Ref().Digest()
	files := runShards(t, cfg, g, dir, [][2]int{{0, 3}, {3, 5}, {5, 8}})

	cases := []struct {
		name   string
		shards []ShardFile
	}{
		{"gap", []ShardFile{files[0], files[2]}},
		{"out-of-order", []ShardFile{files[1], files[0], files[2]}},
		{"short-coverage", []ShardFile{files[0], files[1]}},
		{"none", nil},
	}
	for _, tc := range cases {
		dst := filepath.Join(dir, "bad-"+tc.name+".jsonl")
		if err := MergeShardJournals(dst, cfg, digest, tc.shards); err == nil {
			t.Fatalf("%s: merge accepted a non-partition", tc.name)
		}
		if _, err := os.Stat(dst); err == nil {
			t.Fatalf("%s: failed merge left a file behind", tc.name)
		}
	}

	// A corrupt line in an upload must be rejected before writing.
	if err := WriteShardJournal(filepath.Join(dir, "corrupt.jsonl"), cfg, digest, 0, 3,
		[]string{"{not json"}); err == nil {
		t.Fatal("WriteShardJournal accepted a corrupt line")
	}
	// Duplicate indexes across shards (same shard ingested under two ranges).
	dupe := filepath.Join(dir, "dupe.jsonl")
	lines, _, err := ShardLines(files[0].Path, cfg, digest, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteShardJournal(dupe, cfg, digest, 3, 5, lines); err != nil {
		t.Fatal(err)
	}
	if err := MergeShardJournals(filepath.Join(dir, "bad-dupe.jsonl"), cfg, digest,
		[]ShardFile{files[0], {Path: dupe, Lo: 3, Hi: 5}, files[2]}); err == nil {
		t.Fatal("merge accepted duplicate records across shards")
	}
}
