package accel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestInventoryFractionsSumToOne(t *testing.T) {
	inv := NVDLAInventory()
	var sum float64
	for _, k := range Kinds() {
		if inv.Fraction[k] < 0 {
			t.Fatalf("negative fraction for %v", k)
		}
		sum += inv.Fraction[k]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestInventoryMatchesPaperNumbers(t *testing.T) {
	inv := NVDLAInventory()
	// Table 1 global-control fractions.
	want := map[FFKind]float64{
		GlobalG1: 0.0024, GlobalG2: 0.0025, GlobalG3: 0.0048, GlobalG4: 0.0236,
		GlobalG5: 0.0131, GlobalG6: 0.0096, GlobalG7: 0.0009, GlobalG8: 0.0022,
		GlobalG9: 0.0016, GlobalG10: 0.0012,
	}
	for k, f := range want {
		if math.Abs(inv.Fraction[k]-f) > 1e-12 {
			t.Errorf("%v fraction = %v, want %v", k, inv.Fraction[k], f)
		}
	}
	// Sec 4.3.1: groups 1+3 + local control = 9.8% of all FFs.
	g := inv.Fraction[GlobalG1] + inv.Fraction[GlobalG3] + inv.Fraction[LocalControl]
	if math.Abs(g-0.098) > 1e-9 {
		t.Errorf("G1+G3+local = %v, want 0.098", g)
	}
	// Sec 4.3.1: upper exponent bits = 5.5%.
	if inv.Fraction[DatapathUpperExponent] != 0.055 {
		t.Errorf("upper-exponent fraction = %v", inv.Fraction[DatapathUpperExponent])
	}
	// Sec 3.2.2: 41K global control FFs.
	var globalCount int
	for k := GlobalG1; k <= GlobalG10; k++ {
		globalCount += inv.Count(k)
	}
	if globalCount < 40500 || globalCount > 41500 {
		t.Errorf("global control FF count = %d, want ~41000", globalCount)
	}
}

func TestSampleKindDistribution(t *testing.T) {
	inv := NVDLAInventory()
	r := rng.NewFromInt(1)
	const n = 200000
	counts := make(map[FFKind]int)
	for i := 0; i < n; i++ {
		counts[inv.SampleKind(r)]++
	}
	for _, k := range Kinds() {
		got := float64(counts[k]) / n
		want := inv.Fraction[k]
		if math.Abs(got-want) > 0.004+0.1*want {
			t.Errorf("%v sampled at %v, want %v", k, got, want)
		}
	}
}

func TestSampleDurationBounds(t *testing.T) {
	inv := NVDLAInventory()
	r := rng.NewFromInt(2)
	sawLong := false
	for i := 0; i < 1000; i++ {
		n := inv.SampleDuration(GlobalG4, r)
		if n < 1 || n > MaxLoopIterations {
			t.Fatalf("duration %d out of [1,%d]", n, MaxLoopIterations)
		}
		if n > 1 {
			sawLong = true
		}
	}
	if !sawLong {
		t.Fatal("feedback-loop FFs never produced n > 1")
	}
}

func TestScheduleNCHW(t *testing.T) {
	// [B=2, K=20, H=1, W=3], chanAxis=1.
	s := NewSchedule([]int{2, 20, 1, 3}, 1)
	if s.Channels() != 20 || s.Width() != 6 {
		t.Fatalf("channels=%d width=%d", s.Channels(), s.Width())
	}
	// groups = ceil(20/16) = 2 → cycles = 12.
	if s.Cycles() != 12 {
		t.Fatalf("cycles = %d", s.Cycles())
	}
	// Cycle 0: group 0, pos 0 → batch 0, x 0, channels 0..15.
	outs := s.OutputsAt(0)
	if len(outs) != 16 {
		t.Fatalf("cycle 0 outputs %d elements", len(outs))
	}
	// Flat index of (b=0, ch, y=0, x=0) in [2,20,1,3] is ch*3.
	for i, idx := range outs {
		if idx != i*3 {
			t.Fatalf("cycle 0 output[%d] = %d, want %d", i, idx, i*3)
		}
	}
	// Cycle 6 starts group 1: channels 16..19 only (4 elements).
	outs = s.OutputsAt(6)
	if len(outs) != 4 {
		t.Fatalf("cycle 6 outputs %d elements, want 4 (tail group)", len(outs))
	}
	for i, idx := range outs {
		if idx != (16+i)*3 {
			t.Fatalf("cycle 6 output[%d] = %d", i, idx)
		}
	}
}

func TestScheduleWidthAdvances(t *testing.T) {
	// Consecutive cycles within a group must advance the width position
	// while keeping the same channel set (Table 1).
	s := NewSchedule([]int{1, 16, 2, 2}, 1)
	c0 := s.OutputsAt(0)
	c1 := s.OutputsAt(1)
	for i := range c0 {
		if c1[i] != c0[i]+1 { // x advances by one (last axis, stride 1)
			t.Fatalf("cycle 1 did not advance width: %v vs %v", c0, c1)
		}
	}
}

func TestScheduleWeightGradLayout(t *testing.T) {
	// Weight-gradient tensor [K=8, C=2, KH=1, KW=2] with chanAxis=0.
	s := NewSchedule([]int{8, 2, 1, 2}, 0)
	if s.Channels() != 8 || s.Width() != 4 || s.Cycles() != 4 {
		t.Fatalf("channels=%d width=%d cycles=%d", s.Channels(), s.Width(), s.Cycles())
	}
	outs := s.OutputsAt(0)
	// Position 0 = (c=0,kh=0,kw=0); flat index of (ch,0,0,0) = ch*4.
	for i, idx := range outs {
		if idx != i*4 {
			t.Fatalf("output[%d] = %d", i, idx)
		}
	}
}

func TestScheduleCoversAllElements(t *testing.T) {
	s := NewSchedule([]int{3, 33, 2, 2}, 1)
	seen := make(map[int]bool)
	for c := 0; c < s.Cycles(); c++ {
		for _, idx := range s.OutputsAt(c) {
			if seen[idx] {
				t.Fatalf("element %d produced twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 3*33*2*2 {
		t.Fatalf("schedule covered %d/%d elements", len(seen), 3*33*2*2)
	}
}

func TestUnitOutputAt(t *testing.T) {
	s := NewSchedule([]int{1, 20, 1, 2}, 1)
	idx, ok := s.UnitOutputAt(0, 3)
	if !ok || idx != 3*2 {
		t.Fatalf("unit 3 cycle 0: idx=%d ok=%v", idx, ok)
	}
	// Group 1 (cycles 2,3) has channels 16..19; unit 5 would be channel 21.
	if _, ok := s.UnitOutputAt(2, 5); ok {
		t.Fatal("idle unit reported as active")
	}
}

func TestRandomDynamicRangeValueSpansRange(t *testing.T) {
	r := rng.NewFromInt(3)
	var tiny, huge, neg int
	for i := 0; i < 20000; i++ {
		v := float64(RandomDynamicRangeValue(r))
		a := math.Abs(v)
		if a < 1e-20 && a > 0 {
			tiny++
		}
		if a > 1e20 {
			huge++
		}
		if v < 0 {
			neg++
		}
	}
	if tiny < 1000 || huge < 1000 {
		t.Fatalf("dynamic range not spanned: tiny=%d huge=%d", tiny, huge)
	}
	if neg < 8000 || neg > 12000 {
		t.Fatalf("sign not balanced: %d/20000 negative", neg)
	}
}

// buildArray creates a deterministic MAC array tile.
func buildArray(k, ck, w int, seed int64) *MACArray {
	r := rng.NewFromInt(seed)
	a := &MACArray{Weights: NewMatrix(k, ck), Inputs: NewMatrix(ck, w)}
	for i := range a.Weights.Data {
		a.Weights.Data[i] = float32(r.NormFloat64())
	}
	for i := range a.Inputs.Data {
		a.Inputs.Data[i] = float32(r.NormFloat64())
	}
	return a
}

func TestMACArrayCleanMatchesReference(t *testing.T) {
	a := buildArray(20, 7, 5, 4)
	out := a.Run(nil)
	for ch := 0; ch < 20; ch++ {
		for pos := 0; pos < 5; pos++ {
			var want float32
			for c := 0; c < 7; c++ {
				want += a.Weights.At(ch, c) * a.Inputs.At(c, pos)
			}
			if math.Abs(float64(out.At(ch, pos)-want)) > 1e-4 {
				t.Fatalf("out(%d,%d) = %v, want %v", ch, pos, out.At(ch, pos), want)
			}
		}
	}
}

// TestStructuralValidation is the Sec 3.2.3 experiment in miniature: for
// each global-control fault model, inject the corresponding control-state
// bit flip into the structural MAC array and verify that every corrupted
// output position is predicted by the software fault model.
func TestStructuralValidation(t *testing.T) {
	kinds := []FFKind{GlobalG1, GlobalG2, GlobalG3, GlobalG4, GlobalG5,
		GlobalG6, GlobalG7, GlobalG8, GlobalG9, GlobalG10}
	r := rng.NewFromInt(5)
	const k, ck, w = 36, 9, 7
	total, mismatched := 0, 0
	for trial := 0; trial < 200; trial++ {
		kind := kinds[r.Intn(len(kinds))]
		a := buildArray(k, ck, w, int64(trial))
		clean := a.Run(nil)
		sched := NewSchedule([]int{k, w}, 0)
		fault := &ControlFault{
			Kind:       kind,
			StartCycle: r.Intn(sched.Cycles()),
			N:          1 + r.Intn(4),
			Unit:       r.Intn(MACUnits),
			AddrDelta:  1 + r.Intn(w-1),
			SourceCol:  r.Intn(w),
			Rand:       r.Split(uint64(trial)),
		}
		faulty := a.Run(fault)
		diff := DiffPositions(clean, faulty)
		pred := PredictCorruption(k, w, fault)
		total++
		for _, idx := range diff {
			if !pred[idx] {
				mismatched++
				t.Errorf("trial %d kind %v: corrupted position %d not predicted", trial, kind, idx)
				break
			}
		}
	}
	if mismatched > 0 {
		t.Fatalf("%d/%d structural experiments disagreed with the software model", mismatched, total)
	}
}

func TestStructuralValidationFaultsNotAlwaysMasked(t *testing.T) {
	// At least some injections must visibly corrupt outputs; otherwise the
	// validation above is vacuous.
	r := rng.NewFromInt(6)
	corrupted := 0
	for trial := 0; trial < 50; trial++ {
		a := buildArray(20, 5, 4, int64(100+trial))
		clean := a.Run(nil)
		fault := &ControlFault{
			Kind: GlobalG1, StartCycle: r.Intn(8), N: 2,
			Rand: r.Split(uint64(trial)),
		}
		if len(DiffPositions(clean, a.Run(fault))) > 0 {
			corrupted++
		}
	}
	if corrupted < 40 {
		t.Fatalf("only %d/50 G1 injections corrupted outputs", corrupted)
	}
}

func TestQuickScheduleRoundTrip(t *testing.T) {
	// Property: every element index returned by OutputsAt is within bounds
	// and maps back to the same cycle's channel group.
	f := func(rawK, rawW uint8) bool {
		k := int(rawK)%40 + 1
		w := int(rawW)%9 + 1
		s := NewSchedule([]int{k, w}, 0)
		for c := 0; c < s.Cycles(); c++ {
			for _, idx := range s.OutputsAt(c) {
				if idx < 0 || idx >= k*w {
					return false
				}
				ch := idx / w
				if ch/MACUnits != c/s.Width() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMACArrayRun(b *testing.B) {
	a := buildArray(64, 64, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Run(nil)
	}
}

func TestPlanFor(t *testing.T) {
	cases := []struct {
		op     Op
		shape  []int
		axis   int
		transp bool
	}{
		{OpForward, []int{4, 8, 6, 6}, 1, false},
		{OpForward, []int{4, 16}, 1, false},
		{OpForward, []int{4, 8, 12}, 2, false}, // sequence [B, L, D]
		{OpForward, []int{9}, 0, false},
		{OpInputGrad, []int{4, 8, 6, 6}, 1, false},
		{OpWeightGrad, []int{8, 4, 3, 3}, 0, true},
		{OpWeightGrad, []int{16, 8}, 0, true},
	}
	for _, c := range cases {
		p := PlanFor(c.op, c.shape)
		if p.ChanAxis != c.axis || p.Transposed != c.transp {
			t.Errorf("PlanFor(%v, %v) = %+v, want axis %d transposed %v", c.op, c.shape, p, c.axis, c.transp)
		}
	}
}

func TestScheduleFor(t *testing.T) {
	s := ScheduleFor(OpWeightGrad, []int{8, 2, 3, 3})
	if s.Channels() != 8 || s.Width() != 18 {
		t.Fatalf("weight-grad schedule channels=%d width=%d", s.Channels(), s.Width())
	}
	if OpForward.String() != "forward" || OpWeightGrad.String() != "weight-grad" {
		t.Fatal("op strings wrong")
	}
}
