// Package accel models the deep-learning accelerator the fault-injection
// framework targets. It is the repository's stand-in for NVDLA's RTL
// (Sec 3.1 of the paper): an inventory of flip-flop classes with the
// population fractions reported in Table 1, a cycle-accurate tile schedule
// that maps every output element of a layer operation onto the (cycle, MAC
// unit) that computes it, and a small structural MAC-array simulator used to
// validate the software fault models the way the paper validates them
// against RTL fault injection (Sec 3.2.3).
//
// Dataflow constants follow NVDLA as described in the paper: 16 parallel
// MAC units compute 16 consecutive output channels per cycle; input fetches
// deliver 64 consecutive input channels per cycle; consecutive cycles
// advance along the width dimension.
package accel

import (
	"fmt"

	"repro/internal/rng"
)

// Dataflow constants of the modeled accelerator.
const (
	// MACUnits is the number of parallel multiply-accumulate units; the
	// outputs computed in one cycle belong to MACUnits consecutive
	// channels (Table 1).
	MACUnits = 16
	// InputChannelsPerCycle is the number of consecutive input channels
	// fetched per cycle (Table 1).
	InputChannelsPerCycle = 64
	// GlobalControlFFCount is NVDLA's global-control FF population
	// (Sec 3.2.2: "41K in total").
	GlobalControlFFCount = 41000
	// UniqueControlVariables is the number of distinct control variables
	// those FFs implement (Sec 3.2.2: 7,531).
	UniqueControlVariables = 7531
	// MaxLoopIterations bounds n, the number of cycles a fault in a
	// feedback-loop FF persists (Table 1: "n is randomly chosen between 1
	// and the max number of loop iterations").
	MaxLoopIterations = 8
)

// FFKind classifies a flip-flop by the software fault model its bit-flips
// map to. The ten Global* kinds correspond one-to-one to the rows of
// Table 1.
type FFKind int

// FF kinds. Datapath and local-control FFs use the FIdelity-style models;
// GlobalG1..GlobalG10 use the paper's new global-control models.
const (
	// DatapathOther is a datapath FF holding a non-upper-exponent bit.
	DatapathOther FFKind = iota
	// DatapathUpperExponent is a datapath FF holding one of the upper two
	// exponent bits — 5.5% of all FFs but 31.9–44.3% of unexpected
	// outcomes (Sec 4.3.1).
	DatapathUpperExponent
	// LocalControl is a control FF driving exactly one datapath register.
	LocalControl
	// GlobalG1: configuration/valid flip makes all 16 MAC outputs take
	// random dynamic-range values for n cycles.
	GlobalG1
	// GlobalG2: valid→invalid flip zeroes all 16 MAC outputs for n cycles.
	GlobalG2
	// GlobalG3: like G1 but only one MAC unit is affected.
	GlobalG3
	// GlobalG4: output-address corruption relocates each cycle's outputs.
	GlobalG4
	// GlobalG5: input-1 address corruption (wrong feature-map reads).
	GlobalG5
	// GlobalG6: input-2 address corruption (wrong weight reads).
	GlobalG6
	// GlobalG7: input-1 valid flip zeroes the fetched feature-map slice.
	GlobalG7
	// GlobalG8: input-2 valid flip zeroes the fetched weight slice.
	GlobalG8
	// GlobalG9: input-1 valid flip reuses a stale random feature-map slice.
	GlobalG9
	// GlobalG10: input-2 valid flip reuses a stale random weight slice.
	GlobalG10
	numFFKinds
)

// String implements fmt.Stringer.
func (k FFKind) String() string {
	names := [...]string{
		"datapath", "datapath-upper-exp", "local-control",
		"global-g1", "global-g2", "global-g3", "global-g4", "global-g5",
		"global-g6", "global-g7", "global-g8", "global-g9", "global-g10",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("ffkind(%d)", int(k))
}

// IsGlobalControl reports whether the kind is one of the Table-1 global
// control groups.
func (k FFKind) IsGlobalControl() bool { return k >= GlobalG1 && k <= GlobalG10 }

// IsDatapath reports whether the kind is a datapath FF.
func (k FFKind) IsDatapath() bool { return k == DatapathOther || k == DatapathUpperExponent }

// Inventory is the accelerator's FF population broken down by kind. The
// fractions are taken from the paper: Table 1's "% FFs" column for the
// global-control groups, 5.5% for upper-exponent datapath bits (Sec 4.3.1),
// and local control sized so that groups 1+3 plus local control account for
// 9.8% of all FFs (Sec 4.3.1).
type Inventory struct {
	// Fraction[k] is the share of all FFs of kind k; fractions sum to 1.
	Fraction [numFFKinds]float64
	// TotalFFs is the absolute FF count the fractions are scaled against.
	TotalFFs int
	// loopProb[k] is the probability that an FF of kind k sits in a
	// feedback loop (so its fault persists n > 1 cycles).
	loopProb [numFFKinds]float64

	cumulative [numFFKinds]float64
}

// NVDLAInventory returns the inventory of the modeled NVDLA-style design.
func NVDLAInventory() *Inventory {
	inv := &Inventory{}
	inv.Fraction[GlobalG1] = 0.0024
	inv.Fraction[GlobalG2] = 0.0025
	inv.Fraction[GlobalG3] = 0.0048
	inv.Fraction[GlobalG4] = 0.0236
	inv.Fraction[GlobalG5] = 0.0131
	inv.Fraction[GlobalG6] = 0.0096
	inv.Fraction[GlobalG7] = 0.0009
	inv.Fraction[GlobalG8] = 0.0022
	inv.Fraction[GlobalG9] = 0.0016
	inv.Fraction[GlobalG10] = 0.0012
	// Sec 4.3.1: groups 1+3 + local control = 9.8% of all FFs.
	inv.Fraction[LocalControl] = 0.098 - inv.Fraction[GlobalG1] - inv.Fraction[GlobalG3]
	// Sec 4.3.1: the upper two exponent bits are 5.5% of all FFs.
	inv.Fraction[DatapathUpperExponent] = 0.055
	var rest float64
	for k := FFKind(0); k < numFFKinds; k++ {
		if k != DatapathOther {
			rest += inv.Fraction[k]
		}
	}
	inv.Fraction[DatapathOther] = 1 - rest
	// Scale so the global-control population matches the paper's 41K.
	var globalFrac float64
	for k := GlobalG1; k <= GlobalG10; k++ {
		globalFrac += inv.Fraction[k]
	}
	inv.TotalFFs = int(float64(GlobalControlFFCount)/globalFrac + 0.5)

	// Feedback loops: sequencing/address logic is loop-heavy; pure datapath
	// pipeline registers are not.
	inv.loopProb[DatapathOther] = 0.1
	inv.loopProb[DatapathUpperExponent] = 0.1
	inv.loopProb[LocalControl] = 0.3
	for k := GlobalG1; k <= GlobalG10; k++ {
		inv.loopProb[k] = 0.5
	}
	inv.buildCumulative()
	return inv
}

func (inv *Inventory) buildCumulative() {
	var acc float64
	for k := FFKind(0); k < numFFKinds; k++ {
		acc += inv.Fraction[k]
		inv.cumulative[k] = acc
	}
}

// Count returns the absolute number of FFs of kind k.
func (inv *Inventory) Count(k FFKind) int {
	return int(inv.Fraction[k]*float64(inv.TotalFFs) + 0.5)
}

// SampleKind draws an FF kind with probability proportional to its
// population — the "randomly select an FF" step of each FI experiment
// (Sec 3.3).
func (inv *Inventory) SampleKind(r *rng.Rand) FFKind {
	u := r.Float64()
	for k := FFKind(0); k < numFFKinds; k++ {
		if u < inv.cumulative[k] {
			return k
		}
	}
	return numFFKinds - 1
}

// SampleDuration draws n, the number of consecutive cycles the fault
// persists, for an FF of kind k (Table 1's feedback-loop rule).
func (inv *Inventory) SampleDuration(k FFKind, r *rng.Rand) int {
	if r.Float64() < inv.loopProb[k] {
		return 1 + r.Intn(MaxLoopIterations)
	}
	return 1
}

// Kinds returns all FF kinds in order.
func Kinds() []FFKind {
	ks := make([]FFKind, numFFKinds)
	for i := range ks {
		ks[i] = FFKind(i)
	}
	return ks
}
