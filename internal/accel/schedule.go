package accel

import "fmt"

// Schedule is the cycle-accurate mapping between the elements of an
// operation's output tensor and the accelerator cycles that compute them.
// It encodes the two dataflow facts of Table 1:
//
//   - the outputs computed in one cycle are MACUnits (16) consecutive
//     channels at a single spatial/width position, and
//   - consecutive cycles advance along the width dimension (for a fixed
//     channel group).
//
// The same mapping applies to forward outputs, input gradients, and weight
// gradients, because "the dataflow and compute operations are the same in
// the forward/backward pass of training" (Sec 3.2.2). A schedule is all the
// fault models need from the hardware: given the FF and cycle of a bit
// flip, it identifies the corrupted output elements and their positions.
type Schedule struct {
	shape    []int
	chanAxis int
	channels int
	width    int // number of positions per channel (product of other axes)
	groups   int // ceil(channels / MACUnits)

	// strides[i] is the row-major stride of axis i in the flat tensor.
	strides []int
	// posAxes lists the non-channel axes in order; width positions
	// enumerate them row-major.
	posAxes []int
}

// NewSchedule builds the schedule for a tensor of the given shape whose
// channel axis is chanAxis. For NCHW activations chanAxis is 1; for [B, U]
// dense outputs chanAxis is 1; for [K, C, KH, KW] weight-gradient tensors
// chanAxis is 0.
func NewSchedule(shape []int, chanAxis int) *Schedule {
	if chanAxis < 0 || chanAxis >= len(shape) {
		panic(fmt.Sprintf("accel: channel axis %d out of range for shape %v", chanAxis, shape))
	}
	s := &Schedule{
		shape:    append([]int(nil), shape...),
		chanAxis: chanAxis,
		channels: shape[chanAxis],
	}
	s.strides = make([]int, len(shape))
	stride := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s.strides[i] = stride
		stride *= shape[i]
	}
	s.width = 1
	for i, d := range shape {
		if i != chanAxis {
			s.width *= d
			s.posAxes = append(s.posAxes, i)
		}
	}
	s.groups = (s.channels + MACUnits - 1) / MACUnits
	return s
}

// Cycles returns the total number of cycles needed to compute the tensor.
func (s *Schedule) Cycles() int { return s.groups * s.width }

// Channels returns the size of the channel axis.
func (s *Schedule) Channels() int { return s.channels }

// Width returns the number of width positions per channel.
func (s *Schedule) Width() int { return s.width }

// posOffset converts a width-position index into the flat-tensor offset of
// that position at channel 0.
func (s *Schedule) posOffset(pos int) int {
	off := 0
	// Decompose pos over the non-channel axes, last axis fastest.
	for i := len(s.posAxes) - 1; i >= 0; i-- {
		axis := s.posAxes[i]
		d := s.shape[axis]
		off += (pos % d) * s.strides[axis]
		pos /= d
	}
	return off
}

// OutputsAt returns the flat indices of the output elements computed in the
// given cycle: up to MACUnits consecutive channels at one width position.
func (s *Schedule) OutputsAt(cycle int) []int {
	if cycle < 0 || cycle >= s.Cycles() {
		panic(fmt.Sprintf("accel: cycle %d out of range [0,%d)", cycle, s.Cycles()))
	}
	group := cycle / s.width
	pos := cycle % s.width
	base := s.posOffset(pos)
	lo := group * MACUnits
	hi := lo + MACUnits
	if hi > s.channels {
		hi = s.channels
	}
	out := make([]int, 0, hi-lo)
	for ch := lo; ch < hi; ch++ {
		out = append(out, base+ch*s.strides[s.chanAxis])
	}
	return out
}

// OutputsInWindow returns the flat indices of all elements computed in
// cycles [start, start+n), clamped to the schedule's end — the footprint of
// a fault persisting n cycles.
func (s *Schedule) OutputsInWindow(start, n int) []int {
	var all []int
	for c := start; c < start+n && c < s.Cycles(); c++ {
		all = append(all, s.OutputsAt(c)...)
	}
	return all
}

// IndexOf returns the flat index of channel ch at width position pos. The
// fault models use it to relocate values across width positions (wrong
// address reads/writes, Table 1 groups 4–6).
func (s *Schedule) IndexOf(ch, pos int) int {
	if ch < 0 || ch >= s.channels || pos < 0 || pos >= s.width {
		panic(fmt.Sprintf("accel: IndexOf(%d, %d) out of range (%d channels, %d positions)", ch, pos, s.channels, s.width))
	}
	return s.posOffset(pos) + ch*s.strides[s.chanAxis]
}

// CycleOf returns the cycle that computes channel ch at width position pos.
func (s *Schedule) CycleOf(ch, pos int) int {
	return (ch/MACUnits)*s.width + pos
}

// UnitOutputAt returns the flat index computed by MAC unit `unit` in the
// given cycle, and ok=false if that unit is idle (channel beyond the axis).
// Used by the group-3 model, which corrupts a single MAC unit.
func (s *Schedule) UnitOutputAt(cycle, unit int) (int, bool) {
	if unit < 0 || unit >= MACUnits {
		panic(fmt.Sprintf("accel: MAC unit %d out of range", unit))
	}
	group := cycle / s.width
	pos := cycle % s.width
	ch := group*MACUnits + unit
	if ch >= s.channels {
		return 0, false
	}
	return s.posOffset(pos) + ch*s.strides[s.chanAxis], true
}
