package accel

import (
	"math"

	"repro/internal/numerics"
	"repro/internal/rng"
)

// MACArray is a structural, cycle-by-cycle simulator of the accelerator's
// compute core: a 16-unit MAC array fed by a sequencer with valid signals
// and address registers. It exists to validate the software fault models
// the way the paper validates them against RTL fault injection
// (Sec 3.2.3): a control-FF bit flip is injected into the *structural*
// state (valid bits, address registers, unit enables), the tile is executed
// cycle by cycle, and the corrupted output positions are compared against
// the positions the software fault model predicts.
//
// The array computes out[K, W] = weights[K, CK] × inputs[CK, W], one width
// column per cycle per channel group, mirroring the dataflow of Table 1.
type MACArray struct {
	Weights *Matrix // [K, CK]
	Inputs  *Matrix // [CK, W]
	// Mixed applies bfloat16 rounding to each product, like the real MAC
	// datapath.
	Mixed bool
}

// Matrix is a minimal row-major float32 matrix for the structural model
// (kept separate from package tensor so accel has no dependency cycle
// concerns and the structural model stays self-contained).
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// ControlFault describes a bit flip injected into the array's control state.
// Kind selects which control register is flipped; StartCycle and N give the
// affected cycle window (N > 1 models a feedback-loop FF); Unit, AddrDelta
// and SourceCol parameterize the specific registers.
type ControlFault struct {
	Kind       FFKind
	StartCycle int
	N          int
	// Unit is the affected MAC unit for GlobalG3.
	Unit int
	// AddrDelta is the address-register corruption for G4/G5/G6 (a wrong
	// but in-range offset in width positions).
	AddrDelta int
	// SourceCol is the stale column reused by G9/G10.
	SourceCol int
	// Rand drives the "random dynamic-range values" of G1/G3.
	Rand *rng.Rand
}

// RandomDynamicRangeValue draws a faulty value "that can span the entire
// data precision dynamic range" (Table 1, groups 1 and 3): uniform in
// log-magnitude across the FP32 range with random sign. This sampling is
// what produces the enormous magnitudes (1e9–1e38) behind the paper's
// Table 4 necessary-condition ranges.
func RandomDynamicRangeValue(r *rng.Rand) float32 {
	// log10 magnitude uniform in [-38, 38.5]; values above MaxFloat32
	// round to +/-Inf exactly as an overflowing datapath would.
	exp := -38 + 76.5*r.Float64()
	mag := math.Pow(10, exp)
	v := float32(mag)
	if r.Float64() < 0.5 {
		v = -v
	}
	return v
}

// Run executes the tile cycle by cycle and returns the output matrix
// [K, W]. fault may be nil for a clean run.
func (a *MACArray) Run(fault *ControlFault) *Matrix {
	k, ck := a.Weights.Rows, a.Weights.Cols
	w := a.Inputs.Cols
	out := NewMatrix(k, w)
	groups := (k + MACUnits - 1) / MACUnits
	cycle := 0
	for g := 0; g < groups; g++ {
		for pos := 0; pos < w; pos++ {
			// --- sequencer state for this cycle -------------------------
			outValid := true
			writePos := pos
			readPos := pos
			zeroInput := false
			staleInput := -1
			unitGarbage := -1
			allGarbage := false

			if fault != nil && cycle >= fault.StartCycle && cycle < fault.StartCycle+fault.N {
				switch fault.Kind {
				case GlobalG1:
					allGarbage = true
				case GlobalG2:
					outValid = false
				case GlobalG3:
					unitGarbage = fault.Unit
				case GlobalG4:
					writePos = (pos + fault.AddrDelta) % w
				case GlobalG5, GlobalG6:
					readPos = (pos + fault.AddrDelta) % w
				case GlobalG7, GlobalG8:
					zeroInput = true
				case GlobalG9, GlobalG10:
					staleInput = fault.SourceCol
				}
			}

			// --- datapath ------------------------------------------------
			for u := 0; u < MACUnits; u++ {
				ch := g*MACUnits + u
				if ch >= k {
					break
				}
				var acc float32
				switch {
				case !outValid:
					acc = 0
				case allGarbage || u == unitGarbage:
					acc = RandomDynamicRangeValue(fault.Rand)
				case zeroInput:
					acc = 0
				default:
					src := readPos
					if staleInput >= 0 {
						src = staleInput
					}
					for c := 0; c < ck; c++ {
						wv := a.Weights.At(ch, c)
						iv := a.Inputs.At(c, src)
						if a.Mixed {
							acc += numerics.RoundBF16(numerics.RoundBF16(wv) * numerics.RoundBF16(iv))
						} else {
							acc += wv * iv
						}
					}
				}
				out.Set(ch, writePos, acc)
			}
			cycle++
		}
	}
	return out
}

// DiffPositions returns the flat indices (row-major over [K, W]) where a
// and b differ. This is the structural experiment's observed corruption
// set, compared against the software model's prediction in validation.
func DiffPositions(a, b *Matrix) []int {
	var diff []int
	for i := range a.Data {
		av, bv := a.Data[i], b.Data[i]
		if av != bv && !(numerics.IsNaN32(av) && numerics.IsNaN32(bv)) {
			diff = append(diff, i)
		}
	}
	return diff
}

// PredictCorruption returns the output positions the *software fault model*
// (Table 1) predicts to be corrupted for the given control fault on a
// [K, W] tile. Validation compares this set against DiffPositions of a
// structural run. A faulty position whose recomputed value happens to equal
// the clean value (hardware masking) may appear in the prediction but not
// in the structural diff; validation therefore checks that the structural
// diff is a subset of the prediction.
func PredictCorruption(k, w int, fault *ControlFault) map[int]bool {
	sched := NewSchedule([]int{k, w}, 0)
	pred := make(map[int]bool)
	switch fault.Kind {
	case GlobalG3:
		for c := fault.StartCycle; c < fault.StartCycle+fault.N && c < sched.Cycles(); c++ {
			if idx, ok := sched.UnitOutputAt(c, fault.Unit); ok {
				pred[idx] = true
			}
		}
	case GlobalG4:
		// Both the wrong destination and the now-stale correct location
		// are corrupted.
		for c := fault.StartCycle; c < fault.StartCycle+fault.N && c < sched.Cycles(); c++ {
			group := c / w
			pos := c % w
			wrong := (pos + fault.AddrDelta) % w
			lo := group * MACUnits
			hi := lo + MACUnits
			if hi > k {
				hi = k
			}
			for ch := lo; ch < hi; ch++ {
				pred[ch*w+pos] = true
				pred[ch*w+wrong] = true
			}
		}
	default:
		for _, idx := range sched.OutputsInWindow(fault.StartCycle, fault.N) {
			pred[idx] = true
		}
	}
	return pred
}
