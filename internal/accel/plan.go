package accel

import "fmt"

// Op identifies which training computation a tile executes. The modeled
// accelerator is an inference design adapted for training (Sec 3.1): the
// forward pass runs natively, while the backward pass's input-gradient and
// weight-gradient operations are compiled onto the same MAC array by
// inserting "extra matrix transpose and rotation operations such that the
// order of gradient computations ... matches that required by the training
// algorithm".
type Op int

// Training operations executed on the accelerator.
const (
	// OpForward computes layer outputs: out[N, K, H, W] (or [B, U]).
	OpForward Op = iota
	// OpInputGrad computes input gradients: same layout as the layer
	// input, produced with rotated (180°) kernels in the conv case.
	OpInputGrad
	// OpWeightGrad computes weight gradients: out[K, C, KH, KW], i.e. the
	// output-channel axis leads and the "width" dimension ranges over the
	// kernel's spatial taps — the transposed ordering of Sec 3.1.
	OpWeightGrad
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpForward:
		return "forward"
	case OpInputGrad:
		return "input-grad"
	case OpWeightGrad:
		return "weight-grad"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpPlan records how an operation's output tensor maps onto the MAC
// array: which axis the 16 parallel units stripe across (the channel
// axis), and whether the compilation inserted a transpose relative to the
// forward layout.
type OpPlan struct {
	Op Op
	// ChanAxis is the output tensor axis striped across MAC units.
	ChanAxis int
	// Transposed is true when the op required the Sec-3.1 reordering
	// (weight gradients: the parameter tensor's leading axis is the
	// MAC-parallel one).
	Transposed bool
}

// PlanFor returns the tile plan for an operation producing a tensor of the
// given shape.
//
//	rank 4 forward/input-grad:  NCHW activations → channel axis 1
//	rank 3 (sequence models):   [B, L, D] → feature axis 2
//	rank 2 (dense layers):      [B, U] → unit axis 1
//	weight gradients:           leading (output-channel) axis 0
//
// This is the single place the framework encodes the dataflow-to-tensor
// mapping; the fault injector and the training engine both consume it, so
// the corruption geometry of every pass agrees with the modeled hardware.
func PlanFor(op Op, shape []int) OpPlan {
	if op == OpWeightGrad {
		return OpPlan{Op: op, ChanAxis: 0, Transposed: true}
	}
	axis := 1
	if len(shape) == 3 {
		axis = 2
	}
	if len(shape) == 1 {
		axis = 0
	}
	return OpPlan{Op: op, ChanAxis: axis}
}

// ScheduleFor builds the cycle schedule for an operation's output tensor.
func ScheduleFor(op Op, shape []int) *Schedule {
	return NewSchedule(shape, PlanFor(op, shape).ChanAxis)
}
