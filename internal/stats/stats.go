// Package stats implements the statistical machinery used by the
// fault-injection campaigns: summary statistics, geometric means for
// overhead reporting (the paper reports geomean overheads in Sec 5.3),
// histograms of faulty-value magnitudes (Table 4 ranges), and the
// confidence-interval computations behind the paper's claims of a 99%
// confidence level with a 0.1% interval (Sec 4.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Geomean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (they would make the geomean undefined),
// mirroring how profiler overhead ratios are aggregated in the paper.
func Geomean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Proportion describes an observed binomial proportion together with its
// confidence interval. The fault-injection campaign reports every outcome
// percentage as a Proportion.
type Proportion struct {
	Successes int
	Trials    int
	// P is the point estimate Successes/Trials.
	P float64
	// Lo and Hi bound the Wilson score interval at the requested confidence.
	Lo, Hi float64
	// Confidence is the confidence level the interval was computed at,
	// e.g. 0.99.
	Confidence float64
}

// zForConfidence returns the two-sided standard-normal quantile for the
// given confidence level. Implemented via a rational approximation of the
// inverse error function (Acklam), accurate to ~1e-9 which is far beyond
// what interval reporting needs.
func zForConfidence(confidence float64) float64 {
	p := 1 - (1-confidence)/2
	return math.Sqrt2 * erfinv(2*p-1)
}

// erfinv approximates the inverse error function.
func erfinv(x float64) float64 {
	if x <= -1 {
		return math.Inf(-1)
	}
	if x >= 1 {
		return math.Inf(1)
	}
	// Winitzki's approximation followed by one Newton refinement step.
	const a = 0.147
	ln := math.Log(1 - x*x)
	t1 := 2/(math.Pi*a) + ln/2
	y := math.Copysign(math.Sqrt(math.Sqrt(t1*t1-ln/a)-t1), x)
	// Newton step: f(y) = erf(y) - x.
	for i := 0; i < 2; i++ {
		err := math.Erf(y) - x
		y -= err * math.Sqrt(math.Pi) / 2 * math.Exp(y*y)
	}
	return y
}

// WilsonInterval computes the Wilson score interval for successes out of
// trials at the given confidence level (e.g. 0.99). This is the standard
// approach used in resilience studies for reporting fault-injection outcome
// percentages because it behaves well for proportions near 0 or 1.
func WilsonInterval(successes, trials int, confidence float64) Proportion {
	pr := Proportion{Successes: successes, Trials: trials, Confidence: confidence}
	if trials == 0 {
		return pr
	}
	p := float64(successes) / float64(trials)
	pr.P = p
	z := zForConfidence(confidence)
	n := float64(trials)
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	pr.Lo = math.Max(0, center-margin)
	pr.Hi = math.Min(1, center+margin)
	// The Wilson bounds are exact at the extremes; clamp away float noise.
	if successes == 0 {
		pr.Lo = 0
	}
	if successes == trials {
		pr.Hi = 1
	}
	return pr
}

// TrialsForInterval returns the number of fault-injection experiments needed
// so that a proportion estimate has a symmetric normal-approximation
// confidence interval of +/- halfWidth at the given confidence level,
// assuming worst-case p = 0.5. This mirrors the paper's statistical design
// (99% confidence, 0.1% interval → millions of experiments at full scale).
func TrialsForInterval(halfWidth, confidence float64) int {
	z := zForConfidence(confidence)
	n := z * z * 0.25 / (halfWidth * halfWidth)
	return int(math.Ceil(n))
}

// UnobservedOutcomeProb bounds the probability that an outcome class exists
// but was never observed in n experiments, at the given confidence level.
// This is the "rule of three" generalization used by the paper to claim that
// the probability of an unexposed unexpected outcome is < 0.004% with 99.5%
// confidence after 2.9M experiments.
func UnobservedOutcomeProb(n int, confidence float64) float64 {
	if n <= 0 {
		return 1
	}
	// P(no observation in n trials) <= 1-confidence  =>  p <= -ln(1-conf)/n.
	return -math.Log(1-confidence) / float64(n)
}

// Histogram is a fixed-bucket histogram over a (possibly logarithmic) range.
type Histogram struct {
	// Edges holds len(Counts)+1 bucket boundaries in increasing order.
	Edges []float64
	// Counts holds the number of samples per bucket.
	Counts []int
	// Under and Over count samples falling outside [Edges[0], Edges[last]).
	Under, Over int
}

// NewLogHistogram builds a histogram with buckets spaced logarithmically
// between lo and hi (both must be positive, lo < hi). Log buckets are the
// natural choice for faulty-value magnitudes, which span 1e8..1e38 in the
// paper's Table 4.
func NewLogHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if lo <= 0 || hi <= lo || buckets < 1 {
		return nil, fmt.Errorf("stats: invalid log histogram range [%g, %g) with %d buckets", lo, hi, buckets)
	}
	edges := make([]float64, buckets+1)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := range edges {
		edges[i] = math.Exp(logLo + (logHi-logLo)*float64(i)/float64(buckets))
	}
	edges[0], edges[buckets] = lo, hi // avoid rounding drift at the ends
	return &Histogram{Edges: edges, Counts: make([]int, buckets)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Edges[0] {
		h.Under++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Over++
		return
	}
	// Binary search for the bucket.
	i := sort.SearchFloat64s(h.Edges, x)
	if i > 0 && (i >= len(h.Edges) || h.Edges[i] != x) {
		i--
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of in-range samples recorded.
func (h *Histogram) Total() int {
	var n int
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Range describes an observed [Min, Max] interval of values, as reported in
// the paper's Table 4 ("Ranges observed in experiments").
type Range struct {
	Min, Max float64
	N        int
}

// Observe extends the range with a new sample.
func (r *Range) Observe(x float64) {
	if r.N == 0 {
		r.Min, r.Max = x, x
	} else {
		if x < r.Min {
			r.Min = x
		}
		if x > r.Max {
			r.Max = x
		}
	}
	r.N++
}

// String renders the range in the paper's "2.9e38-3.0e38" style.
func (r Range) String() string {
	if r.N == 0 {
		return "(none observed)"
	}
	return fmt.Sprintf("%.1e-%.1e (n=%d)", r.Min, r.Max, r.N)
}
