package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single element should be 0")
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Errorf("Geomean(1,100) = %v, want 10", got)
	}
	if got := Geomean([]float64{2, 8}); !almostEqual(got, 4, 1e-9) {
		t.Errorf("Geomean(2,8) = %v, want 4", got)
	}
	// Non-positive entries are skipped.
	if got := Geomean([]float64{-5, 0, 2, 8}); !almostEqual(got, 4, 1e-9) {
		t.Errorf("Geomean with non-positive = %v, want 4", got)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty should be 0")
	}
}

func TestZForConfidence(t *testing.T) {
	// Standard two-sided z values.
	cases := []struct{ conf, want float64 }{
		{0.90, 1.6449}, {0.95, 1.9600}, {0.99, 2.5758}, {0.995, 2.8070},
	}
	for _, c := range cases {
		if got := zForConfidence(c.conf); !almostEqual(got, c.want, 0.002) {
			t.Errorf("z(%v) = %v, want %v", c.conf, got, c.want)
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	p := WilsonInterval(50, 100, 0.95)
	if !almostEqual(p.P, 0.5, 1e-12) {
		t.Errorf("P = %v", p.P)
	}
	// Known Wilson interval for 50/100 at 95%: about [0.404, 0.596].
	if !almostEqual(p.Lo, 0.4038, 0.003) || !almostEqual(p.Hi, 0.5962, 0.003) {
		t.Errorf("interval = [%v, %v], want ~[0.404, 0.596]", p.Lo, p.Hi)
	}
	// Interval must contain the point estimate and stay within [0,1].
	if p.Lo > p.P || p.Hi < p.P || p.Lo < 0 || p.Hi > 1 {
		t.Errorf("malformed interval %+v", p)
	}
}

func TestWilsonIntervalEdges(t *testing.T) {
	zero := WilsonInterval(0, 100, 0.99)
	if zero.Lo != 0 {
		t.Errorf("0 successes should give Lo = 0, got %v", zero.Lo)
	}
	full := WilsonInterval(100, 100, 0.99)
	if full.Hi != 1 {
		t.Errorf("all successes should give Hi = 1, got %v", full.Hi)
	}
	empty := WilsonInterval(0, 0, 0.99)
	if empty.P != 0 || empty.Lo != 0 || empty.Hi != 0 {
		t.Errorf("empty trials should be zero-valued: %+v", empty)
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	small := WilsonInterval(10, 100, 0.99)
	large := WilsonInterval(1000, 10000, 0.99)
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Errorf("interval did not shrink: small %v, large %v", small.Hi-small.Lo, large.Hi-large.Lo)
	}
}

func TestTrialsForInterval(t *testing.T) {
	// The paper's setting: 99% confidence, 0.1% half-width requires ~1.66M.
	n := TrialsForInterval(0.001, 0.99)
	if n < 1_500_000 || n > 1_800_000 {
		t.Errorf("TrialsForInterval(0.001, 0.99) = %d, want ~1.66M", n)
	}
}

func TestUnobservedOutcomeProb(t *testing.T) {
	// After 2.9M experiments at 99.5% confidence the bound should be tiny,
	// in line with the paper's < 0.004% claim.
	p := UnobservedOutcomeProb(2_900_000, 0.995)
	if p > 0.00004 {
		t.Errorf("UnobservedOutcomeProb = %v, want < 4e-5", p)
	}
	if UnobservedOutcomeProb(0, 0.99) != 1 {
		t.Error("zero trials should give probability 1")
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewLogHistogram(1, 1e4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets: [1,10), [10,100), [100,1000), [1000,10000).
	h.Add(5)
	h.Add(50)
	h.Add(500)
	h.Add(5000)
	h.Add(0.5)  // under
	h.Add(2e4)  // over
	h.Add(1)    // first edge inclusive
	h.Add(9999) // inside last bucket
	want := []int{2, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts=%v)", i, c, want[i], h.Counts)
		}
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
}

func TestLogHistogramInvalid(t *testing.T) {
	if _, err := NewLogHistogram(0, 10, 4); err == nil {
		t.Error("lo=0 should be rejected")
	}
	if _, err := NewLogHistogram(10, 1, 4); err == nil {
		t.Error("hi<lo should be rejected")
	}
	if _, err := NewLogHistogram(1, 10, 0); err == nil {
		t.Error("0 buckets should be rejected")
	}
}

func TestRange(t *testing.T) {
	var r Range
	if r.String() != "(none observed)" {
		t.Errorf("empty Range string = %q", r.String())
	}
	r.Observe(3.6e9)
	r.Observe(1.1e19)
	r.Observe(1e12)
	if r.Min != 3.6e9 || r.Max != 1.1e19 || r.N != 3 {
		t.Errorf("Range = %+v", r)
	}
}

func TestQuickWilsonContainsEstimate(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int(n)%1000 + 1
		successes := int(s) % (trials + 1)
		p := WilsonInterval(successes, trials, 0.99)
		return p.Lo <= p.P+1e-12 && p.Hi >= p.P-1e-12 && p.Lo >= 0 && p.Hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewLogHistogram(1e-3, 1e3, 12)
		if err != nil {
			return false
		}
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(math.Abs(x))
			n++
		}
		return h.Total()+h.Under+h.Over == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
